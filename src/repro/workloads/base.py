"""Benchmark abstraction shared by the six workloads.

The paper evaluates on the NPU benchmark suite of Esmaeilzadeh et al.
[1] and St. Amant et al. [7].  Those benchmarks ship as proprietary
binaries with captured traces; we rebuild each one from scratch:

* an **oracle** — an exact implementation of the kernel the neural
  network approximates (FFT twiddle, inverse kinematics, triangle
  intersection, JPEG block codec, k-means distance, Sobel window);
* a **generator** producing the kernel's input distribution
  synthetically (there are no data files in this repo);
* the **error metric** native to the application (Table 1).

A :class:`Benchmark` owns the unit-interval normalization, so the
architecture layer (:mod:`repro.core`) only ever sees values in
``[0, 1)`` — exactly what the fixed-point codec and the sigmoid output
stage expect.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.cost.area import Topology
from repro.metrics.error import METRICS
from repro.nn.datasets import UnitScaler

__all__ = ["BenchmarkSpec", "Benchmark", "Dataset"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of a benchmark (Table 1 rows)."""

    name: str
    application: str
    topology: Topology
    metric: str

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(f"unknown metric {self.metric!r}; known: {sorted(METRICS)}")


@dataclass
class Dataset:
    """Normalized train/test split plus the scalers that produced it."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    input_scaler: UnitScaler
    output_scaler: UnitScaler

    @property
    def in_dim(self) -> int:
        return self.x_train.shape[1]

    @property
    def out_dim(self) -> int:
        return self.y_train.shape[1]


class Benchmark(ABC):
    """One workload: oracle kernel + input generator + metric."""

    spec: BenchmarkSpec

    @abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` raw (engineering-unit) input/output pairs."""

    @abstractmethod
    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        """Analytic input/output scalers to the unit interval."""

    @property
    def metric_fn(self) -> Callable[[np.ndarray, np.ndarray], float]:
        """The application's error metric on engineering units."""
        return METRICS[self.spec.metric]

    def error(self, predicted_raw: np.ndarray, target_raw: np.ndarray) -> float:
        """Score predictions with the benchmark's native metric."""
        return self.metric_fn(predicted_raw, target_raw)

    def dataset(
        self,
        n_train: int = 10_000,
        n_test: int = 1_000,
        seed: int = 0,
    ) -> Dataset:
        """Generate and normalize a train/test split.

        The paper trains on 10,000 random samples and tests on another
        1,000 (Sec. 3.1's Fig. 3 setup); those are the defaults.
        """
        if n_train < 1 or n_test < 1:
            raise ValueError("n_train and n_test must be >= 1")
        rng = np.random.default_rng(seed)
        x_raw, y_raw = self.generate(n_train + n_test, rng)
        in_scaler, out_scaler = self.scalers()
        x = in_scaler.transform(x_raw)
        y = out_scaler.transform(y_raw)
        return Dataset(
            x_train=x[:n_train],
            y_train=y[:n_train],
            x_test=x[n_train:],
            y_test=y[n_train:],
            input_scaler=in_scaler,
            output_scaler=out_scaler,
        )

    def error_normalized(self, predicted_unit: np.ndarray, target_unit: np.ndarray) -> float:
        """Score unit-interval predictions by un-normalizing first."""
        _, out_scaler = self.scalers()
        return self.error(out_scaler.inverse(predicted_unit), out_scaler.inverse(target_unit))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec.name}, {self.spec.topology})"
