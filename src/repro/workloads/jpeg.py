"""JPEG benchmark: 8x8 block DCT-quantization codec approximation.

The NPU suite's ``jpeg`` workload approximates the lossy heart of a
JPEG encoder with a 64x16x64 network: input is an 8x8 pixel block,
output the block after forward DCT, quantization, dequantization and
inverse DCT — i.e. the pixels the decoder would reconstruct.  Error
metric: image diff.

Substrate implemented from scratch:

* exact 2D DCT-II / DCT-III (type-2 forward, type-3 inverse) on 8x8
  blocks via the orthonormal DCT matrix;
* the standard JPEG luminance quantization table with quality scaling;
* zigzag scan order (exposed for completeness / compression studies);
* a synthetic image generator (gradients + ellipses + texture) since
  the repo ships no image data;
* block (de)tiling helpers to run whole images through a predictor.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.workloads.base import Benchmark, BenchmarkSpec

__all__ = [
    "dct_matrix",
    "block_dct",
    "block_idct",
    "quantization_table",
    "codec_roundtrip",
    "zigzag_indices",
    "synthetic_image",
    "image_to_blocks",
    "blocks_to_image",
    "JPEGBenchmark",
]

BLOCK = 8

# Standard JPEG luminance quantization table (Annex K of ITU T.81).
_BASE_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=float,
)


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n``."""
    k = np.arange(n)
    basis = np.cos(np.pi * (2 * k[None, :] + 1) * k[:, None] / (2 * n))
    basis[0] *= 1.0 / np.sqrt(2.0)
    return basis * np.sqrt(2.0 / n)


_DCT = dct_matrix()


def block_dct(blocks: np.ndarray) -> np.ndarray:
    """2D DCT-II of 8x8 blocks, shape ``(n, 8, 8)`` (or a single block)."""
    blocks = np.asarray(blocks, dtype=float)
    return _DCT @ blocks @ _DCT.T


def block_idct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2D DCT (DCT-III) of 8x8 coefficient blocks."""
    coeffs = np.asarray(coeffs, dtype=float)
    return _DCT.T @ coeffs @ _DCT


def quantization_table(quality: int = 50) -> np.ndarray:
    """JPEG luminance table scaled for a quality factor in [1, 100]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    scale = 5000.0 / quality if quality < 50 else 200.0 - 2.0 * quality
    table = np.floor((_BASE_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def zigzag_indices(n: int = BLOCK) -> np.ndarray:
    """Zigzag scan order as flat indices into an ``n x n`` block."""
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: (ij[0] + ij[1], ij[0] if (ij[0] + ij[1]) % 2 else ij[1]),
    )
    return np.array([i * n + j for i, j in order])


def codec_roundtrip(blocks: np.ndarray, quality: int = 50) -> np.ndarray:
    """Exact oracle: DCT -> quantize -> dequantize -> IDCT.

    Blocks are pixel arrays in ``[0, 255]``, shape ``(n, 8, 8)``; the
    returned reconstruction is clipped back to ``[0, 255]``.
    """
    blocks = np.asarray(blocks, dtype=float)
    table = quantization_table(quality)
    coeffs = block_dct(blocks - 128.0)
    quantized = np.round(coeffs / table)
    recon = block_idct(quantized * table) + 128.0
    return np.clip(recon, 0.0, 255.0)


def synthetic_image(
    height: int, width: int, rng: np.random.Generator, texture: float = 8.0
) -> np.ndarray:
    """Structured grayscale test image (gradient + ellipses + texture)."""
    if height < BLOCK or width < BLOCK:
        raise ValueError("image must be at least one 8x8 block")
    yy, xx = np.mgrid[0:height, 0:width]
    img = 96.0 + 64.0 * xx / max(width - 1, 1) + 32.0 * yy / max(height - 1, 1)
    for _ in range(4):
        cy, cx = rng.uniform(0, height), rng.uniform(0, width)
        ry, rx = rng.uniform(height / 8, height / 3), rng.uniform(width / 8, width / 3)
        level = rng.uniform(-80.0, 80.0)
        mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 < 1.0
        img = img + level * mask
    img = img + rng.normal(0.0, texture, size=img.shape)
    return np.clip(img, 0.0, 255.0)


def image_to_blocks(image: np.ndarray) -> np.ndarray:
    """Tile an image (cropped to block multiples) into ``(n, 8, 8)``."""
    image = np.asarray(image, dtype=float)
    h = (image.shape[0] // BLOCK) * BLOCK
    w = (image.shape[1] // BLOCK) * BLOCK
    if h == 0 or w == 0:
        raise ValueError("image smaller than one block")
    cropped = image[:h, :w]
    blocks = cropped.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK).swapaxes(1, 2)
    return blocks.reshape(-1, BLOCK, BLOCK)


def blocks_to_image(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Reassemble ``(n, 8, 8)`` blocks into an image of given size."""
    h = (height // BLOCK) * BLOCK
    w = (width // BLOCK) * BLOCK
    grid = np.asarray(blocks, dtype=float).reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
    return grid.swapaxes(1, 2).reshape(h, w)


class JPEGBenchmark(Benchmark):
    """Block codec approximation, topology 64x16x64 (Table 1)."""

    def __init__(self, quality: int = 50) -> None:
        self.quality = quality
        self.spec = BenchmarkSpec(
            name="jpeg",
            application="Compression",
            topology=Topology(inputs=64, hidden=16, outputs=64),
            metric="image_diff",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        # Blocks sampled from synthetic images so the pixel statistics
        # look like real photographic content, not white noise.
        blocks = []
        while sum(b.shape[0] for b in blocks) < n:
            img = synthetic_image(64, 64, rng)
            blocks.append(image_to_blocks(img))
        all_blocks = np.concatenate(blocks)[:n]
        recon = codec_roundtrip(all_blocks, self.quality)
        return all_blocks.reshape(n, 64), recon.reshape(n, 64)

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        in_scaler = UnitScaler(low=np.zeros(64), high=np.full(64, 255.0))
        out_scaler = UnitScaler(low=np.zeros(64), high=np.full(64, 255.0), margin=0.02)
        return in_scaler, out_scaler

    def error(self, predicted_raw: np.ndarray, target_raw: np.ndarray) -> float:
        """Image diff normalized by the 255 pixel range."""
        return self.metric_fn(predicted_raw, target_raw, value_range=255.0)
