"""Jmeint benchmark: 3D triangle-triangle intersection (Moller test).

The NPU suite's ``jmeint`` workload (from the jMonkeyEngine game
engine) classifies whether two 3D triangles intersect.  Inputs are the
18 vertex coordinates (2 triangles x 3 vertices x 3 coords); the
18x48x2 network emits a one-hot {intersect, miss} pair.  Error metric:
miss rate.

The oracle is a from-scratch implementation of the Moller fast
triangle-triangle interval-overlap test (including the coplanar 2D
fallback), vectorized over batches.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.workloads.base import Benchmark, BenchmarkSpec

__all__ = ["triangles_intersect", "JmeintBenchmark"]

_EPS = 1e-9


def _interval_endpoints(dp: np.ndarray, proj: np.ndarray) -> np.ndarray:
    """Parametric interval of a triangle's crossing of the plane line.

    ``dp``: signed distances of the 3 vertices to the other plane,
    ``proj``: their projections on the intersection-line direction.
    Assumes the distances are not all one sign (a crossing exists).
    Vectorized over the batch; returns ``(n, 2)`` interval endpoints.
    """
    n = dp.shape[0]
    intervals = np.empty((n, 2))
    for i in range(n):
        d = dp[i]
        p = proj[i]
        # Find the vertex on one side alone; its two edges cross the line.
        signs = np.sign(d)
        ts = []
        for a in range(3):
            for b in range(a + 1, 3):
                if signs[a] * signs[b] < 0 or (signs[a] == 0) != (signs[b] == 0):
                    denom = d[a] - d[b]
                    if abs(denom) > _EPS:
                        t = p[a] + (p[b] - p[a]) * d[a] / denom
                        ts.append(t)
        if len(ts) >= 2:
            intervals[i] = (min(ts), max(ts))
        elif len(ts) == 1:
            intervals[i] = (ts[0], ts[0])
        else:
            # All vertices on the plane handled by the coplanar path.
            intervals[i] = (np.nan, np.nan)
    return intervals


def _coplanar_overlap(t1: np.ndarray, t2: np.ndarray, normal: np.ndarray) -> bool:
    """2D separating-axis test for coplanar triangles."""
    # Project onto the dominant axis plane of the normal.
    axis = int(np.argmax(np.abs(normal)))
    keep = [i for i in range(3) if i != axis]
    a = t1[:, keep]
    b = t2[:, keep]

    def edges(tri: np.ndarray):
        return [(tri[i], tri[(i + 1) % 3]) for i in range(3)]

    # Separating axis: perpendicular of each edge of both triangles.
    for tri_a, tri_b in ((a, b), (b, a)):
        for p0, p1 in edges(tri_a):
            edge = p1 - p0
            perp = np.array([-edge[1], edge[0]])
            proj_a = tri_a @ perp
            proj_b = tri_b @ perp
            if proj_a.max() < proj_b.min() - _EPS or proj_b.max() < proj_a.min() - _EPS:
                return False
    return True


def _intersect_one(tri1: np.ndarray, tri2: np.ndarray) -> bool:
    """Moller interval-overlap test for a single triangle pair."""
    n1 = np.cross(tri1[1] - tri1[0], tri1[2] - tri1[0])
    n2 = np.cross(tri2[1] - tri2[0], tri2[2] - tri2[0])
    d1 = tri2 @ n1 - tri1[0] @ n1  # distances of tri2's vertices to plane 1
    d2 = tri1 @ n2 - tri2[0] @ n2
    # Early reject: one triangle strictly on one side of the other's plane.
    if np.all(d1 > _EPS) or np.all(d1 < -_EPS):
        return False
    if np.all(d2 > _EPS) or np.all(d2 < -_EPS):
        return False
    direction = np.cross(n1, n2)
    if np.linalg.norm(direction) < _EPS:
        # Coplanar (or degenerate) triangles.
        if abs(d1).max() > _EPS:
            return False  # parallel, non-coplanar
        return _coplanar_overlap(tri1, tri2, n1)
    proj1 = tri1 @ direction
    proj2 = tri2 @ direction
    i1 = _interval_endpoints(d2[None, :], proj1[None, :])[0]
    i2 = _interval_endpoints(d1[None, :], proj2[None, :])[0]
    if np.any(np.isnan(i1)) or np.any(np.isnan(i2)):
        return _coplanar_overlap(tri1, tri2, n1)
    return bool(i1[0] <= i2[1] + _EPS and i2[0] <= i1[1] + _EPS)


def triangles_intersect(pairs: np.ndarray) -> np.ndarray:
    """Batch oracle: ``(n, 18)`` coordinate rows -> boolean ``(n,)``.

    Row layout: triangle 1's three vertices then triangle 2's, each
    vertex ``(x, y, z)``.
    """
    pairs = np.atleast_2d(np.asarray(pairs, dtype=float))
    if pairs.shape[1] != 18:
        raise ValueError(f"expected 18 coordinates per row, got {pairs.shape[1]}")
    out = np.empty(pairs.shape[0], dtype=bool)
    for i, row in enumerate(pairs):
        tri1 = row[:9].reshape(3, 3)
        tri2 = row[9:].reshape(3, 3)
        out[i] = _intersect_one(tri1, tri2)
    return out


class JmeintBenchmark(Benchmark):
    """Triangle intersection classification, topology 18x48x2."""

    def __init__(self, box_size: float = 1.0) -> None:
        if box_size <= 0:
            raise ValueError("box_size must be positive")
        self.box_size = box_size
        self.spec = BenchmarkSpec(
            name="jmeint",
            application="3D Gaming",
            topology=Topology(inputs=18, hidden=48, outputs=2),
            metric="miss_rate",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        # Scene-like pair mix (the NPU suite's data comes from a game
        # engine's collision queries, which are mostly easy): 35% far
        # pairs (clear miss), 40% co-located pairs (mostly hits), 25%
        # boundary-distance pairs.  This yields a balanced label rate
        # and a difficulty matching the paper's reported miss rates.
        box = self.box_size
        tri1 = rng.uniform(0.0, box, (n, 3, 3))
        tri2 = rng.uniform(-0.4 * box, 0.4 * box, (n, 3, 3))
        tri2 -= tri2.mean(axis=1, keepdims=True)
        centroid1 = tri1.mean(axis=1)
        regime = rng.random(n)
        far = regime < 0.35
        near = (regime >= 0.35) & (regime < 0.75)
        boundary = regime >= 0.75
        directions = rng.normal(size=(n, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        offsets = np.zeros((n, 3))
        offsets[far] = directions[far] * rng.uniform(0.8, 1.5, (far.sum(), 1)) * box
        offsets[near] = directions[near] * rng.uniform(0.0, 0.1, (near.sum(), 1)) * box
        offsets[boundary] = (
            directions[boundary] * rng.uniform(0.2, 0.5, (boundary.sum(), 1)) * box
        )
        tri2 = tri2 + (centroid1 + offsets)[:, None, :]
        pairs = np.concatenate([tri1.reshape(n, 9), tri2.reshape(n, 9)], axis=1)
        # Keep every coordinate inside the scaler's fixed range; labels
        # are computed after clipping so geometry and labels agree.
        pairs = np.clip(pairs, -box, 2.0 * box)
        labels = triangles_intersect(pairs)
        one_hot = np.column_stack([labels.astype(float), 1.0 - labels.astype(float)])
        return pairs, one_hot

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        in_scaler = UnitScaler(
            low=np.full(18, -self.box_size), high=np.full(18, 2.0 * self.box_size)
        )
        out_scaler = UnitScaler(low=np.zeros(2), high=np.ones(2), margin=0.05)
        return in_scaler, out_scaler
