"""repro — reproduction of "Merging the Interface" (Li et al., DAC 2015).

A production-style Python library for RRAM crossbar-based mixed-signal
computing systems (RCS): the MEI interface-merging architecture, the
SAAB boosting ensemble, the power/area/accuracy design space
exploration, and every substrate they stand on (NumPy MLPs, crossbar
simulators with IR-drop MNA solving, behavioural AD/DA and analog
periphery, cost models, and the six NPU benchmarks rebuilt from
scratch).

Quick start::

    from repro import MEI, MEIConfig, make_benchmark

    bench = make_benchmark("sobel")
    data = bench.dataset(n_train=5000, n_test=500)
    mei = MEI(MEIConfig(in_groups=9, out_groups=1, hidden=16))
    mei.train(data.x_train, data.y_train)
    error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
"""

from repro.core import (
    MEI,
    SAAB,
    AnalogMLP,
    DSEConfig,
    DSEResult,
    MEIConfig,
    SAABConfig,
    TraditionalRCS,
    explore,
)
from repro.cost import (
    LITERATURE_AREA,
    LITERATURE_POWER,
    CostParams,
    MEITopology,
    Topology,
    breakdown,
    fit_cost_params,
    savings,
)
from repro.device import HFOX_DEVICE, IDEAL, NonIdealFactors, RRAMDevice
from repro.nn import MLP, TrainConfig, Trainer
from repro.parallel import (
    SerialExecutor,
    ProcessExecutor,
    ThreadExecutor,
    derive_seed,
    derive_seeds,
    ensure_rng,
    fresh_rng,
    get_executor,
    parallel_map,
    resolve_workers,
)
from repro.quant import FixedPointCodec
from repro.serialization import (
    load_mei,
    load_mlp,
    load_rcs,
    load_saab,
    save_mei,
    save_mlp,
    save_rcs,
    save_saab,
)
from repro.workloads import BENCHMARK_NAMES, PAPER_TABLE1, all_benchmarks, make_benchmark
from repro.xbar import Crossbar, DifferentialCrossbar, MNACrossbar

__version__ = "1.0.0"

__all__ = [
    "MEI",
    "MEIConfig",
    "SAAB",
    "SAABConfig",
    "TraditionalRCS",
    "AnalogMLP",
    "DSEConfig",
    "DSEResult",
    "explore",
    "Topology",
    "MEITopology",
    "CostParams",
    "LITERATURE_AREA",
    "LITERATURE_POWER",
    "breakdown",
    "savings",
    "fit_cost_params",
    "RRAMDevice",
    "HFOX_DEVICE",
    "NonIdealFactors",
    "IDEAL",
    "MLP",
    "Trainer",
    "TrainConfig",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "parallel_map",
    "resolve_workers",
    "derive_seed",
    "derive_seeds",
    "ensure_rng",
    "fresh_rng",
    "FixedPointCodec",
    "Crossbar",
    "DifferentialCrossbar",
    "MNACrossbar",
    "make_benchmark",
    "all_benchmarks",
    "BENCHMARK_NAMES",
    "PAPER_TABLE1",
    "save_mlp",
    "load_mlp",
    "save_mei",
    "load_mei",
    "save_rcs",
    "load_rcs",
    "save_saab",
    "load_saab",
    "__version__",
]
