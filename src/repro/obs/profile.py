"""Ranked hot-spot reports from span telemetry (``repro profile``).

The optimization loop this repository runs on is *measure first*: every
experiment already records a span tree (``--trace`` / ``REPRO_TRACE``)
and every ``bench`` run archives flattened ``span.*`` wall-clock totals
in the run history.  This module turns any of those artifacts into a
ranked hot-spot table so "what should we speed up next?" is one command
instead of manifest spelunking:

* **inclusive seconds** — total wall time inside a span path (what the
  span tree already shows);
* **exclusive seconds** — inclusive time minus the time covered by the
  span's direct children, i.e. the cost attributable to the node
  itself.  Ranking by exclusive time is what surfaces actual hot spots
  rather than every ancestor of one.

Report sources, in the order the CLI resolves them:

1. an explicit manifest (``--manifest PATH``);
2. a fresh traced run (``--fresh EXPERIMENT``);
3. the newest span-bearing run manifest under the run directory;
4. the latest run-history entry's ``span.*`` metrics (call counts are
   not recorded there, so ``calls`` shows ``?``).

Rendered as text (default), JSON (``--json``) or a self-contained HTML
page (``--html PATH``); see ``docs/performance.md``.
"""

from __future__ import annotations

import html
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs import trace as _trace

__all__ = [
    "HotSpot",
    "hotspots_from_tree",
    "hotspots_from_records",
    "hotspots_from_flat_metrics",
    "build_report",
    "render_text",
    "render_html",
    "latest_manifest_path",
]


@dataclass(frozen=True)
class HotSpot:
    """One ranked row of the profile report."""

    path: str
    name: str
    count: int
    """Number of span occurrences; 0 when unknown (history-derived)."""
    inclusive_seconds: float
    exclusive_seconds: float

    @property
    def per_call_seconds(self) -> float:
        return self.inclusive_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "name": self.name,
            "count": self.count,
            "inclusive_seconds": round(self.inclusive_seconds, 6),
            "exclusive_seconds": round(self.exclusive_seconds, 6),
            "per_call_seconds": round(self.per_call_seconds, 6),
        }


def _rank(spots: List[HotSpot]) -> List[HotSpot]:
    return sorted(
        spots,
        key=lambda s: (-s.exclusive_seconds, -s.inclusive_seconds, s.path),
    )


def hotspots_from_tree(tree: Dict[str, object]) -> List[HotSpot]:
    """Walk a (possibly manifest-serialized) span tree into ranked rows.

    Accepts both the finalized tree shape (``children`` as a list, as
    stored in manifests) and the in-progress dict shape.
    """
    spots: List[HotSpot] = []

    def _children(node: Dict[str, object]) -> List[Dict[str, object]]:
        children = node.get("children") or []
        if isinstance(children, dict):
            children = list(children.values())
        return [c for c in children if isinstance(c, dict)]

    def _walk(node: Dict[str, object]) -> None:
        children = _children(node)
        inclusive = float(node.get("total_seconds", 0.0) or 0.0)
        covered = sum(float(c.get("total_seconds", 0.0) or 0.0) for c in children)
        if node.get("path"):
            spots.append(
                HotSpot(
                    path=str(node["path"]),
                    name=str(node.get("name", "")) or str(node["path"]).rsplit("/", 1)[-1],
                    count=int(node.get("count", 0) or 0),
                    inclusive_seconds=inclusive,
                    exclusive_seconds=max(0.0, inclusive - covered),
                )
            )
        for child in children:
            _walk(child)

    _walk(tree)
    return _rank(spots)


def hotspots_from_records(
    records: Optional[Sequence[_trace.SpanRecord]] = None,
) -> List[HotSpot]:
    """Ranked rows from in-process span records (or the live collector)."""
    return hotspots_from_tree(_trace.span_tree(records))


def hotspots_from_flat_metrics(metrics: Dict[str, object]) -> List[HotSpot]:
    """Ranked rows from flattened ``span.<path>`` history metrics.

    History entries only archive per-path totals, so exclusive time is
    reconstructed from the path hierarchy and call counts are unknown.
    """
    totals: Dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(key, str) and key.startswith("span.") and key != "span.":
            try:
                totals[key[len("span."):]] = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
    spots = []
    for path, seconds in totals.items():
        depth = path.count("/") + 1
        covered = sum(
            child_seconds
            for child_path, child_seconds in totals.items()
            if child_path.startswith(path + "/") and child_path.count("/") + 1 == depth + 1
        )
        spots.append(
            HotSpot(
                path=path,
                name=path.rsplit("/", 1)[-1],
                count=0,
                inclusive_seconds=seconds,
                exclusive_seconds=max(0.0, seconds - covered),
            )
        )
    return _rank(spots)


def build_report(
    hotspots: Sequence[HotSpot], source: str, experiment: Optional[str] = None
) -> Dict[str, object]:
    """Assemble the machine-readable report envelope."""
    total = sum(spot.exclusive_seconds for spot in hotspots)
    return {
        "source": source,
        "experiment": experiment,
        "total_seconds": round(total, 6),
        "hotspots": [spot.to_dict() for spot in hotspots],
    }


def _fmt_count(count: object) -> str:
    return str(count) if count else "?"


def render_text(report: Dict[str, object], top: int = 15) -> str:
    """Aligned hot-spot table for terminals."""
    rows = list(report.get("hotspots") or [])[:top]
    total = float(report.get("total_seconds", 0.0) or 0.0)
    lines = [
        f"profile — source: {report.get('source')}",
        f"attributed wall time: {total:.3f}s across {len(report.get('hotspots') or [])} span paths",
        "",
        f"{'excl s':>10}  {'%':>5}  {'incl s':>10}  {'calls':>7}  {'s/call':>10}  path",
    ]
    for row in rows:
        excl = float(row["exclusive_seconds"])
        share = 100.0 * excl / total if total > 0 else 0.0
        lines.append(
            f"{excl:>10.4f}  {share:>5.1f}  {float(row['inclusive_seconds']):>10.4f}  "
            f"{_fmt_count(row['count']):>7}  {float(row['per_call_seconds']):>10.4f}  "
            f"{row['path']}"
        )
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def render_html(report: Dict[str, object], top: int = 50) -> str:
    """Self-contained HTML page mirroring the text table."""
    rows = list(report.get("hotspots") or [])[:top]
    total = float(report.get("total_seconds", 0.0) or 0.0)
    body = []
    for row in rows:
        excl = float(row["exclusive_seconds"])
        share = 100.0 * excl / total if total > 0 else 0.0
        body.append(
            "<tr><td>{path}</td><td>{excl:.4f}</td><td>{share:.1f}%</td>"
            "<td>{incl:.4f}</td><td>{count}</td><td>{per:.4f}</td></tr>".format(
                path=html.escape(str(row["path"])),
                excl=excl,
                share=share,
                incl=float(row["inclusive_seconds"]),
                count=html.escape(_fmt_count(row["count"])),
                per=float(row["per_call_seconds"]),
            )
        )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>repro profile</title><style>"
        "body{font-family:sans-serif;margin:2em}table{border-collapse:collapse}"
        "td,th{border:1px solid #ccc;padding:4px 10px;text-align:right}"
        "td:first-child,th:first-child{text-align:left;font-family:monospace}"
        "</style></head><body>"
        f"<h1>repro profile</h1><p>source: <code>{html.escape(str(report.get('source')))}</code>"
        f" — attributed wall time {total:.3f}s</p>"
        "<table><tr><th>path</th><th>excl&nbsp;s</th><th>%</th>"
        "<th>incl&nbsp;s</th><th>calls</th><th>s/call</th></tr>"
        + "".join(body)
        + "</table></body></html>"
    )


def latest_manifest_path(run_dir: "str | pathlib.Path") -> Optional[pathlib.Path]:
    """Newest span-bearing run manifest under ``run_dir``, if any.

    Manifest filenames lead with a sortable timestamp; files without a
    ``span_tree`` key (e.g. archived profile reports) are skipped.
    """
    directory = pathlib.Path(run_dir)
    if not directory.is_dir():
        return None
    for path in sorted(directory.glob("*.json"), reverse=True):
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(manifest, dict) and isinstance(manifest.get("span_tree"), dict):
            return path
    return None
