"""OpenMetrics text exposition for the metrics registry.

Renders the process-wide :class:`~repro.obs.metrics.MetricsRegistry`
(plus telemetry-sampler gauges and alert states) in the OpenMetrics /
Prometheus text format, and serves it from a stdlib
:class:`http.server` endpoint:

* :func:`render` — registry snapshot → exposition text, with counter
  families (``repro_<name>_total``), gauges, full histogram families
  (cumulative ``_bucket{le=...}`` over the shared
  :data:`~repro.obs.metrics.BUCKET_BOUNDS` ladder, ``_sum``,
  ``_count``) and a live quantile gauge family per histogram
  (``repro_<name>_quantiles{quantile="0.5"}``) so p50/p99 are
  scrapeable without a query engine;
* :func:`validate` — a grammar-lite checker for the text format used
  by the test suite and the CI smoke step;
* :class:`TelemetryServer` — a daemon-thread HTTP server exposing
  ``/metrics`` (exposition), ``/telemetry.json`` (the sampler ring)
  and ``/`` (the self-refreshing HTML dashboard from
  :mod:`repro.obs.dashboard`).

Start it with ``python -m repro metrics-server``, or implicitly for
any run via ``REPRO_TELEMETRY=1`` (port/interval knobs in
:mod:`repro.config.knobs`).
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger

__all__ = [
    "CONTENT_TYPE",
    "render",
    "validate",
    "metric_name",
    "TelemetryServer",
]

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"
"""Content type of the ``/metrics`` response."""

PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

_log = get_logger("obs.openmetrics")

_QUANTILE_POINTS: Tuple[float, ...] = (0.5, 0.95, 0.99)


def metric_name(name: str) -> str:
    """Registry metric name → legal prefixed OpenMetrics family name."""
    cleaned = _SANITIZE.sub("_", name.strip())
    if not cleaned or not _NAME_OK.match(f"{PREFIX}{cleaned}"):
        cleaned = f"invalid_{abs(hash(name)) % 10_000}"
    return f"{PREFIX}{cleaned}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _le_label(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def render(
    snapshot: Optional[Dict[str, Dict[str, object]]] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
    alert_states: Optional[Dict[str, bool]] = None,
) -> str:
    """The registry snapshot as OpenMetrics exposition text.

    ``extra_gauges`` carries sampler-derived values (process RSS/CPU,
    rates) that live outside the registry; ``alert_states`` renders as
    an ``repro_alert_state{alert="..."}`` gauge family.  Ends with the
    mandatory ``# EOF`` terminator.
    """
    snap = snapshot if snapshot is not None else _metrics.snapshot()
    lines: List[str] = []

    for name, value in sorted(snap.get("counters", {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"# HELP {family} Registry counter {name}.")
        lines.append(f"{family}_total {_format_value(float(value))}")

    for name, value in sorted(snap.get("gauges", {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"# HELP {family} Registry gauge {name}.")
        lines.append(f"{family} {_format_value(float(value))}")

    for name, value in sorted((extra_gauges or {}).items()):
        if value is None:
            continue
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"# HELP {family} Telemetry sampler gauge {name}.")
        lines.append(f"{family} {_format_value(float(value))}")

    for name, summary in sorted(snap.get("histograms", {}).items()):
        if not summary:
            continue
        family = metric_name(name)
        count = int(summary.get("count") or 0)
        total = float(summary.get("sum") or 0.0)
        buckets = summary.get("buckets")
        lines.append(f"# TYPE {family} histogram")
        lines.append(f"# HELP {family} Registry histogram {name} (seconds).")
        if isinstance(buckets, (list, tuple)) and len(buckets) == len(
            _metrics.BUCKET_BOUNDS
        ):
            cumulative = 0
            for bound, bucket_count in zip(_metrics.BUCKET_BOUNDS, buckets):
                cumulative += int(bucket_count)
                lines.append(
                    f'{family}_bucket{{le="{_le_label(bound)}"}} {cumulative}'
                )
        else:
            lines.append(f'{family}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{family}_sum {_format_value(total)}")
        lines.append(f"{family}_count {count}")
        if count:
            qfamily = f"{family}_quantiles"
            lines.append(f"# TYPE {qfamily} gauge")
            lines.append(
                f"# HELP {qfamily} Live streaming quantile estimates for {name}."
            )
            for q in _QUANTILE_POINTS:
                estimate = _metrics.quantile_from_summary(summary, q)
                lines.append(
                    f'{qfamily}{{quantile="{q}"}} {_format_value(estimate)}'
                )

    if alert_states:
        family = f"{PREFIX}alert_state"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"# HELP {family} Threshold alert states (1 = firing).")
        for alert, firing in sorted(alert_states.items()):
            label = alert.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'{family}{{alert="{label}"}} {1 if firing else 0}')

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN))"
    r"(?: -?\d+\.?\d*)?$"
)
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate(text: str) -> None:
    """Grammar-lite OpenMetrics validation; raises ``ValueError``.

    Checks the properties the scrape contract depends on: every line
    is a well-formed comment or sample, label pairs parse, sample
    names belong to a family declared by a preceding ``# TYPE`` line,
    counter samples use the ``_total`` suffix, and the payload ends
    with exactly one ``# EOF`` terminator.
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        errors.append("payload must end with '# EOF'")
    for lineno, line in enumerate(lines, 1):
        if not line:
            errors.append(f"line {lineno}: empty line")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if line == "# EOF":
                if lineno != len(lines):
                    errors.append(f"line {lineno}: '# EOF' before end of payload")
                continue
            if len(parts) < 4 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                if parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "info", "stateset", "unknown",
                ):
                    errors.append(f"line {lineno}: unknown TYPE {parts[3]!r}")
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1]
            if body:
                for pair in body.split(","):
                    if not _LABEL.match(pair.strip()):
                        errors.append(f"line {lineno}: malformed label {pair!r}")
        family = name
        for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        declared = types.get(family)
        if declared is None:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
            continue
        if declared == "counter" and not name.endswith(("_total", "_created")):
            errors.append(
                f"line {lineno}: counter sample {name!r} must use the _total suffix"
            )
        if declared == "histogram" and name == family:
            errors.append(
                f"line {lineno}: bare histogram sample {name!r} "
                "(expected _bucket/_sum/_count)"
            )
    if errors:
        raise ValueError("invalid OpenMetrics payload:\n" + "\n".join(errors))


class TelemetryServer:
    """Daemon-thread HTTP endpoint for live metrics.

    Routes: ``/metrics`` (OpenMetrics text), ``/telemetry.json`` (the
    sampler's in-memory ring as a JSON array) and ``/`` (the
    self-refreshing HTML dashboard).  Binds to ``127.0.0.1`` only —
    this is a local observability endpoint, not a public service.
    Pass ``port=0`` for a free ephemeral port; the bound port is
    available as :attr:`port` after :meth:`start`.
    """

    def __init__(self, port: int = 9464, sampler=None, host: str = "127.0.0.1") -> None:
        self._requested_port = int(port)
        self.host = host
        self.sampler = sampler
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actual bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return int(self._httpd.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _send(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = server.render_metrics().encode("utf-8")
                        self._send(200, CONTENT_TYPE, body)
                    elif path == "/telemetry.json":
                        samples = (
                            server.sampler.samples() if server.sampler else []
                        )
                        body = json.dumps(samples, default=str).encode("utf-8")
                        self._send(200, "application/json; charset=utf-8", body)
                    elif path in ("/", "/index.html"):
                        from repro.obs import dashboard as _dashboard

                        body = _dashboard.render_dashboard_html(
                            server.sampler.samples() if server.sampler else [],
                            refresh_seconds=2,
                        ).encode("utf-8")
                        self._send(200, "text/html; charset=utf-8", body)
                    else:
                        self._send(404, "text/plain; charset=utf-8", b"not found\n")
                except BrokenPipeError:  # client went away mid-response
                    pass
                except Exception as exc:  # never kill the serving thread
                    _log.warning(
                        "telemetry request failed",
                        extra={"fields": {"path": path, "error": repr(exc)}},
                    )
                    try:
                        self._send(
                            500, "text/plain; charset=utf-8", b"internal error\n"
                        )
                    except OSError:
                        pass

            def log_message(self, format: str, *args) -> None:
                _log.debug(
                    "http " + format % args if args else "http " + format,
                    extra={"fields": {"client": self.client_address[0]}},
                )

        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "telemetry server listening",
            extra={"fields": {"url": self.url}},
        )
        return self

    def render_metrics(self) -> str:
        """The exposition payload for the current process state."""
        extra: Dict[str, float] = {}
        alerts: Optional[Dict[str, bool]] = None
        if self.sampler is not None:
            latest = self.sampler.latest()
            if latest:
                process = latest.get("process") or {}
                if isinstance(process, dict):
                    rss = process.get("rss_bytes")
                    if isinstance(rss, (int, float)):
                        extra["process_rss_bytes"] = float(rss)
                    cpu = process.get("cpu_seconds")
                    if isinstance(cpu, (int, float)):
                        extra["process_cpu_seconds"] = float(cpu)
                derived = latest.get("derived") or {}
                if isinstance(derived, dict):
                    for key, value in derived.items():
                        if isinstance(value, (int, float)):
                            extra[f"derived_{key}"] = float(value)
            alerts = self.sampler.alert_states
        return render(extra_gauges=extra, alert_states=alerts)

    def stop(self) -> None:
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
            self._httpd = None
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
