"""Trajectory reporting: markdown tables and a self-contained HTML page.

Renders the run history (:mod:`repro.obs.history`) into something a
human scans in seconds:

* :func:`render_markdown` — accuracy and perf tables with unicode
  sparklines, first/last values and deltas, plus the top-N slowest
  span paths of the latest run;
* :func:`render_html` — one dependency-free HTML file (inline CSS +
  inline SVG sparklines) suitable for a CI artifact.

Everything is stdlib-only; the HTML embeds no external assets so the
file stays viewable offline and in artifact browsers.
"""

from __future__ import annotations

import html as _html
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import compare as _compare
from repro.obs import history as _history

__all__ = [
    "SPARK_CHARS",
    "BUDGET_PALETTE",
    "sparkline",
    "svg_sparkline",
    "stacked_budget_svg",
    "errorbudget_breakdown",
    "trajectories",
    "slowest_spans",
    "render_markdown",
    "render_html",
    "write_report",
]

SPARK_CHARS = "▁▂▃▄▅▆▇█"

BUDGET_PALETTE = (
    "#3b5bdb",
    "#e8590c",
    "#2b8a3e",
    "#d6336c",
    "#f08c00",
    "#0c8599",
    "#6741d9",
    "#868e96",
)
"""Stage colors for the stacked error-budget bars (cycled)."""


def sparkline(values: Sequence[float]) -> str:
    """Unicode mini-chart of a metric trajectory (empty for <1 point)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo <= 0:
        return SPARK_CHARS[0] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (hi - lo)
    return "".join(SPARK_CHARS[int(round((v - lo) * scale))] for v in values)


def svg_sparkline(
    values: Sequence[float], width: int = 120, height: int = 24
) -> str:
    """Inline SVG polyline for the HTML report (self-contained)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) == 1:
        values = values * 2
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    last_x = pad + (len(values) - 1) * step
    last_y = height - pad - (values[-1] - lo) / span * (height - 2 * pad)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.5" '
        f'points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2"/></svg>'
    )


def stacked_budget_svg(
    segments: Sequence[Tuple[str, float]],
    width: int = 360,
    height: int = 18,
    palette: Sequence[str] = BUDGET_PALETTE,
) -> str:
    """Inline SVG stacked bar; segment widths ∝ ``|value|``.

    Each segment carries a ``<title>`` tooltip with its label and
    signed value (a stage whose idealization *hurts* shows up with a
    negative delta but still occupies its share of the bar).
    """
    segments = [(str(label), float(value)) for label, value in segments]
    total = sum(abs(value) for _, value in segments)
    if total <= 0:
        return ""
    parts = [
        f'<svg class="budget" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    x = 0.0
    for i, (label, value) in enumerate(segments):
        w = abs(value) / total * width
        color = palette[i % len(palette)]
        tooltip = _html.escape(f"{label}: {value:+.4g}")
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{w:.1f}" height="{height}" '
            f'fill="{color}"><title>{tooltip}</title></rect>'
        )
        x += w
    parts.append("</svg>")
    return "".join(parts)


def errorbudget_breakdown(
    history: Sequence[Dict[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Latest per-benchmark error-budget decomposition in the history.

    Parses the flat ``errorbudget.<bench>.stage.<stage>.delta`` metric
    names of the newest ``kind == "errorbudget"`` entry back into
    ``{bench: {"stages": [(stage, delta), ...], "total_gap": ...,
    "residual": ..., "err_real": ..., "err_ideal": ...}}``, stages
    sorted by descending delta.  Empty when no errorbudget entry
    exists.
    """
    newest = _history.latest_entry(_history.entries_of_kind(history, "errorbudget"))
    metrics = newest.get("metrics") if newest else None
    if not isinstance(metrics, dict):
        return {}
    out: Dict[str, Dict[str, object]] = {}
    for name, value in metrics.items():
        if not name.startswith("errorbudget.") or isinstance(value, bool):
            continue
        if not isinstance(value, (int, float)):
            continue
        parts = name.split(".")
        bench = parts[1]
        record = out.setdefault(bench, {"stages": []})
        if len(parts) == 5 and parts[2] == "stage" and parts[4] == "delta":
            record["stages"].append((parts[3], float(value)))
        elif len(parts) == 3 and parts[2] in (
            "total_gap", "residual", "err_real", "err_ideal"
        ):
            record[parts[2]] = float(value)
    for record in out.values():
        record["stages"].sort(key=lambda item: -item[1])
    return {bench: rec for bench, rec in out.items() if rec["stages"]}


def trajectories(
    history: Sequence[Dict[str, object]],
) -> Dict[str, List[Tuple[str, str, float]]]:
    """Per-metric ``(created, short-sha, value)`` series, history order."""
    out: Dict[str, List[Tuple[str, str, float]]] = {}
    for entry in history:
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            continue
        created = str(entry.get("created", ""))
        sha = str(entry.get("git_sha") or "unknown")[:12]
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out.setdefault(name, []).append((created, sha, float(value)))
    return out


def slowest_spans(
    metrics: Dict[str, float], n: int = 10
) -> List[Tuple[str, float]]:
    """Top-N ``span.*`` paths of one entry by total wall seconds."""
    spans = [
        (name[len("span."):], float(value))
        for name, value in metrics.items()
        if name.startswith("span.")
    ]
    spans.sort(key=lambda item: -item[1])
    return spans[:n]


def _latest_metrics(history: Sequence[Dict[str, object]]) -> Dict[str, float]:
    newest = _history.latest_entry(history)
    metrics = newest.get("metrics") if newest else None
    if not isinstance(metrics, dict):
        return {}
    return {
        k: float(v)
        for k, v in metrics.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def _split_by_kind(
    series: Dict[str, List[Tuple[str, str, float]]],
) -> Tuple[List[str], List[str]]:
    accuracy = sorted(n for n in series if _compare.classify_metric(n) == "accuracy")
    perf = sorted(n for n in series if _compare.classify_metric(n) == "perf")
    return accuracy, perf


def render_markdown(
    history: Sequence[Dict[str, object]],
    title: str = "Benchmark trajectory",
    top_spans: int = 10,
) -> str:
    """Markdown report: accuracy table, perf table, slowest spans."""
    series = trajectories(history)
    accuracy, perf = _split_by_kind(series)
    lines = [f"# {title}", ""]
    if not series:
        lines.append("_No history entries yet — run `python -m repro bench`._")
        return "\n".join(lines) + "\n"
    entries = [e for e in history if isinstance(e.get("metrics"), dict)]
    shas = [str(e.get("git_sha") or "unknown")[:12] for e in entries]
    lines.append(
        f"{len(entries)} run(s), {len(series)} metric(s), "
        f"commits {shas[0]} → {shas[-1]}."
    )
    lines.append("")
    for heading, names in (("Accuracy metrics", accuracy), ("Performance metrics", perf)):
        if not names:
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("| metric | n | first | last | delta | trend |")
        lines.append("|---|---:|---:|---:|---:|---|")
        for name in names:
            points = [v for _, _, v in series[name]]
            delta = points[-1] - points[0]
            lines.append(
                f"| `{name}` | {len(points)} | {points[0]:.6g} | {points[-1]:.6g} "
                f"| {delta:+.6g} | {sparkline(points)} |"
            )
        lines.append("")
    budget = errorbudget_breakdown(history)
    if budget:
        lines.append("## Error budget (latest attribution run)")
        lines.append("")
        lines.append(
            "Per-stage accuracy recovered by idealizing that stage alone "
            "(counterfactual attribution; see docs/observability.md)."
        )
        lines.append("")
        for bench in sorted(budget):
            record = budget[bench]
            gap = float(record.get("total_gap", 0.0))
            lines.append(
                f"**`{bench}`** — error {record.get('err_real', float('nan')):.4g} real "
                f"→ {record.get('err_ideal', float('nan')):.4g} ideal, "
                f"gap {gap:.4g}, residual {record.get('residual', 0.0):+.4g}"
            )
            lines.append("")
            lines.append("| stage | delta | share | |")
            lines.append("|---|---:|---:|---|")
            magnitude = sum(abs(d) for _, d in record["stages"]) or 1.0
            for stage, delta in record["stages"]:
                share = abs(delta) / magnitude
                bar = "█" * max(1, int(round(share * 20))) if delta else ""
                lines.append(f"| `{stage}` | {delta:+.4g} | {share:.0%} | {bar} |")
            lines.append("")
    top = slowest_spans(_latest_metrics(history), n=top_spans)
    if top:
        lines.append(f"## Slowest spans (latest run, top {len(top)})")
        lines.append("")
        lines.append("| span path | seconds |")
        lines.append("|---|---:|")
        for path, seconds in top:
            lines.append(f"| `{path}` | {seconds:.3f} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.3rem 0.6rem; border-bottom: 1px solid #e0e0ea; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f2f2f8; padding: 0.1rem 0.3rem; border-radius: 3px; }
.spark { color: #3b5bdb; vertical-align: middle; }
.meta { color: #667; }
.delta-bad { color: #c0392b; } .delta-good { color: #1e8449; }
""".strip()


def render_html(
    history: Sequence[Dict[str, object]],
    title: str = "Benchmark trajectory",
    top_spans: int = 10,
) -> str:
    """Self-contained HTML page mirroring :func:`render_markdown`."""
    series = trajectories(history)
    accuracy, perf = _split_by_kind(series)
    entries = [e for e in history if isinstance(e.get("metrics"), dict)]
    esc = _html.escape

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    if not entries:
        parts.append(
            "<p class='meta'>No history entries yet — run "
            "<code>python -m repro bench</code>.</p></body></html>"
        )
        return "\n".join(parts)
    shas = [str(e.get("git_sha") or "unknown")[:12] for e in entries]
    parts.append(
        f"<p class='meta'>{len(entries)} run(s), {len(series)} metric(s), "
        f"commits <code>{esc(shas[0])}</code> → <code>{esc(shas[-1])}</code>, "
        f"latest {esc(str(entries[-1].get('created', '')))}.</p>"
    )

    def _metric_table(names: List[str]) -> None:
        parts.append(
            "<table><thead><tr><th>metric</th><th class='num'>n</th>"
            "<th class='num'>first</th><th class='num'>last</th>"
            "<th class='num'>delta</th><th>trend</th></tr></thead><tbody>"
        )
        for name in names:
            points = [v for _, _, v in series[name]]
            delta = points[-1] - points[0]
            worse = (delta > 0) != _compare.higher_is_better(name) and delta != 0
            cls = "delta-bad" if worse else "delta-good"
            parts.append(
                f"<tr><td><code>{esc(name)}</code></td>"
                f"<td class='num'>{len(points)}</td>"
                f"<td class='num'>{points[0]:.6g}</td>"
                f"<td class='num'>{points[-1]:.6g}</td>"
                f"<td class='num {cls}'>{delta:+.6g}</td>"
                f"<td>{svg_sparkline(points)}</td></tr>"
            )
        parts.append("</tbody></table>")

    for heading, names in (("Accuracy metrics", accuracy), ("Performance metrics", perf)):
        if names:
            parts.append(f"<h2>{esc(heading)}</h2>")
            _metric_table(names)

    budget = errorbudget_breakdown(history)
    if budget:
        parts.append("<h2>Error budget (latest attribution run)</h2>")
        parts.append(
            "<p class='meta'>Per-stage accuracy recovered by idealizing that "
            "stage alone (counterfactual attribution); hover a segment for "
            "its signed delta. See <code>docs/observability.md</code>.</p>"
        )
        parts.append(
            "<table><thead><tr><th>benchmark</th><th class='num'>gap</th>"
            "<th class='num'>residual</th><th>stage budget</th></tr></thead><tbody>"
        )
        legend_stages: List[str] = []
        for bench in sorted(budget):
            record = budget[bench]
            for stage, _ in record["stages"]:
                if stage not in legend_stages:
                    legend_stages.append(stage)
        stage_color = {
            stage: BUDGET_PALETTE[i % len(BUDGET_PALETTE)]
            for i, stage in enumerate(legend_stages)
        }
        for bench in sorted(budget):
            record = budget[bench]
            palette = [stage_color[stage] for stage, _ in record["stages"]]
            bar = stacked_budget_svg(record["stages"], palette=palette)
            parts.append(
                f"<tr><td><code>{esc(bench)}</code></td>"
                f"<td class='num'>{float(record.get('total_gap', 0.0)):.4g}</td>"
                f"<td class='num'>{float(record.get('residual', 0.0)):+.4g}</td>"
                f"<td>{bar}</td></tr>"
            )
        parts.append("</tbody></table>")
        legend = " ".join(
            f"<span style='color:{stage_color[stage]}'>■</span> "
            f"<code>{esc(stage)}</code>"
            for stage in legend_stages
        )
        parts.append(f"<p class='meta'>{legend}</p>")
    top = slowest_spans(_latest_metrics(history), n=top_spans)
    if top:
        parts.append(f"<h2>Slowest spans (latest run, top {len(top)})</h2>")
        parts.append(
            "<table><thead><tr><th>span path</th>"
            "<th class='num'>seconds</th></tr></thead><tbody>"
        )
        for path, seconds in top:
            parts.append(
                f"<tr><td><code>{esc(path)}</code></td>"
                f"<td class='num'>{seconds:.3f}</td></tr>"
            )
        parts.append("</tbody></table>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(
    history: Sequence[Dict[str, object]],
    out_dir: "str | pathlib.Path" = "runs",
    stem: str = "report",
    title: str = "Benchmark trajectory",
    top_spans: int = 10,
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Write ``<out_dir>/<stem>.md`` and ``.html``; return both paths."""
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    md_path = directory / f"{stem}.md"
    html_path = directory / f"{stem}.html"
    md_path.write_text(
        render_markdown(history, title=title, top_spans=top_spans), encoding="utf-8"
    )
    html_path.write_text(
        render_html(history, title=title, top_spans=top_spans), encoding="utf-8"
    )
    return md_path, html_path


def load_and_write(
    history_path: "Optional[str | pathlib.Path]" = None,
    out_dir: "str | pathlib.Path" = "runs",
    **kwargs: object,
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Convenience: load the history store and write both report files."""
    return write_report(_history.load_history(history_path), out_dir=out_dir, **kwargs)
