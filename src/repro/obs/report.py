"""Trajectory reporting: markdown tables and a self-contained HTML page.

Renders the run history (:mod:`repro.obs.history`) into something a
human scans in seconds:

* :func:`render_markdown` — accuracy and perf tables with unicode
  sparklines, first/last values and deltas, plus the top-N slowest
  span paths of the latest run;
* :func:`render_html` — one dependency-free HTML file (inline CSS +
  inline SVG sparklines) suitable for a CI artifact.

Everything is stdlib-only; the HTML embeds no external assets so the
file stays viewable offline and in artifact browsers.
"""

from __future__ import annotations

import html as _html
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import compare as _compare
from repro.obs import history as _history

__all__ = [
    "SPARK_CHARS",
    "sparkline",
    "svg_sparkline",
    "trajectories",
    "slowest_spans",
    "render_markdown",
    "render_html",
    "write_report",
]

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode mini-chart of a metric trajectory (empty for <1 point)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo <= 0:
        return SPARK_CHARS[0] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (hi - lo)
    return "".join(SPARK_CHARS[int(round((v - lo) * scale))] for v in values)


def svg_sparkline(
    values: Sequence[float], width: int = 120, height: int = 24
) -> str:
    """Inline SVG polyline for the HTML report (self-contained)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) == 1:
        values = values * 2
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    last_x = pad + (len(values) - 1) * step
    last_y = height - pad - (values[-1] - lo) / span * (height - 2 * pad)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.5" '
        f'points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2"/></svg>'
    )


def trajectories(
    history: Sequence[Dict[str, object]],
) -> Dict[str, List[Tuple[str, str, float]]]:
    """Per-metric ``(created, short-sha, value)`` series, history order."""
    out: Dict[str, List[Tuple[str, str, float]]] = {}
    for entry in history:
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            continue
        created = str(entry.get("created", ""))
        sha = str(entry.get("git_sha") or "unknown")[:12]
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out.setdefault(name, []).append((created, sha, float(value)))
    return out


def slowest_spans(
    metrics: Dict[str, float], n: int = 10
) -> List[Tuple[str, float]]:
    """Top-N ``span.*`` paths of one entry by total wall seconds."""
    spans = [
        (name[len("span."):], float(value))
        for name, value in metrics.items()
        if name.startswith("span.")
    ]
    spans.sort(key=lambda item: -item[1])
    return spans[:n]


def _latest_metrics(history: Sequence[Dict[str, object]]) -> Dict[str, float]:
    newest = _history.latest_entry(history)
    metrics = newest.get("metrics") if newest else None
    if not isinstance(metrics, dict):
        return {}
    return {
        k: float(v)
        for k, v in metrics.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def _split_by_kind(
    series: Dict[str, List[Tuple[str, str, float]]],
) -> Tuple[List[str], List[str]]:
    accuracy = sorted(n for n in series if _compare.classify_metric(n) == "accuracy")
    perf = sorted(n for n in series if _compare.classify_metric(n) == "perf")
    return accuracy, perf


def render_markdown(
    history: Sequence[Dict[str, object]],
    title: str = "Benchmark trajectory",
    top_spans: int = 10,
) -> str:
    """Markdown report: accuracy table, perf table, slowest spans."""
    series = trajectories(history)
    accuracy, perf = _split_by_kind(series)
    lines = [f"# {title}", ""]
    if not series:
        lines.append("_No history entries yet — run `python -m repro bench`._")
        return "\n".join(lines) + "\n"
    entries = [e for e in history if isinstance(e.get("metrics"), dict)]
    shas = [str(e.get("git_sha") or "unknown")[:12] for e in entries]
    lines.append(
        f"{len(entries)} run(s), {len(series)} metric(s), "
        f"commits {shas[0]} → {shas[-1]}."
    )
    lines.append("")
    for heading, names in (("Accuracy metrics", accuracy), ("Performance metrics", perf)):
        if not names:
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("| metric | n | first | last | delta | trend |")
        lines.append("|---|---:|---:|---:|---:|---|")
        for name in names:
            points = [v for _, _, v in series[name]]
            delta = points[-1] - points[0]
            lines.append(
                f"| `{name}` | {len(points)} | {points[0]:.6g} | {points[-1]:.6g} "
                f"| {delta:+.6g} | {sparkline(points)} |"
            )
        lines.append("")
    top = slowest_spans(_latest_metrics(history), n=top_spans)
    if top:
        lines.append(f"## Slowest spans (latest run, top {len(top)})")
        lines.append("")
        lines.append("| span path | seconds |")
        lines.append("|---|---:|")
        for path, seconds in top:
            lines.append(f"| `{path}` | {seconds:.3f} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.3rem 0.6rem; border-bottom: 1px solid #e0e0ea; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f2f2f8; padding: 0.1rem 0.3rem; border-radius: 3px; }
.spark { color: #3b5bdb; vertical-align: middle; }
.meta { color: #667; }
.delta-bad { color: #c0392b; } .delta-good { color: #1e8449; }
""".strip()


def render_html(
    history: Sequence[Dict[str, object]],
    title: str = "Benchmark trajectory",
    top_spans: int = 10,
) -> str:
    """Self-contained HTML page mirroring :func:`render_markdown`."""
    series = trajectories(history)
    accuracy, perf = _split_by_kind(series)
    entries = [e for e in history if isinstance(e.get("metrics"), dict)]
    esc = _html.escape

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    if not entries:
        parts.append(
            "<p class='meta'>No history entries yet — run "
            "<code>python -m repro bench</code>.</p></body></html>"
        )
        return "\n".join(parts)
    shas = [str(e.get("git_sha") or "unknown")[:12] for e in entries]
    parts.append(
        f"<p class='meta'>{len(entries)} run(s), {len(series)} metric(s), "
        f"commits <code>{esc(shas[0])}</code> → <code>{esc(shas[-1])}</code>, "
        f"latest {esc(str(entries[-1].get('created', '')))}.</p>"
    )

    def _metric_table(names: List[str]) -> None:
        parts.append(
            "<table><thead><tr><th>metric</th><th class='num'>n</th>"
            "<th class='num'>first</th><th class='num'>last</th>"
            "<th class='num'>delta</th><th>trend</th></tr></thead><tbody>"
        )
        for name in names:
            points = [v for _, _, v in series[name]]
            delta = points[-1] - points[0]
            worse = (delta > 0) != _compare.higher_is_better(name) and delta != 0
            cls = "delta-bad" if worse else "delta-good"
            parts.append(
                f"<tr><td><code>{esc(name)}</code></td>"
                f"<td class='num'>{len(points)}</td>"
                f"<td class='num'>{points[0]:.6g}</td>"
                f"<td class='num'>{points[-1]:.6g}</td>"
                f"<td class='num {cls}'>{delta:+.6g}</td>"
                f"<td>{svg_sparkline(points)}</td></tr>"
            )
        parts.append("</tbody></table>")

    for heading, names in (("Accuracy metrics", accuracy), ("Performance metrics", perf)):
        if names:
            parts.append(f"<h2>{esc(heading)}</h2>")
            _metric_table(names)

    top = slowest_spans(_latest_metrics(history), n=top_spans)
    if top:
        parts.append(f"<h2>Slowest spans (latest run, top {len(top)})</h2>")
        parts.append(
            "<table><thead><tr><th>span path</th>"
            "<th class='num'>seconds</th></tr></thead><tbody>"
        )
        for path, seconds in top:
            parts.append(
                f"<tr><td><code>{esc(path)}</code></td>"
                f"<td class='num'>{seconds:.3f}</td></tr>"
            )
        parts.append("</tbody></table>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(
    history: Sequence[Dict[str, object]],
    out_dir: "str | pathlib.Path" = "runs",
    stem: str = "report",
    title: str = "Benchmark trajectory",
    top_spans: int = 10,
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Write ``<out_dir>/<stem>.md`` and ``.html``; return both paths."""
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    md_path = directory / f"{stem}.md"
    html_path = directory / f"{stem}.html"
    md_path.write_text(
        render_markdown(history, title=title, top_spans=top_spans), encoding="utf-8"
    )
    html_path.write_text(
        render_html(history, title=title, top_spans=top_spans), encoding="utf-8"
    )
    return md_path, html_path


def load_and_write(
    history_path: "Optional[str | pathlib.Path]" = None,
    out_dir: "str | pathlib.Path" = "runs",
    **kwargs: object,
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Convenience: load the history store and write both report files."""
    return write_report(_history.load_history(history_path), out_dir=out_dir, **kwargs)
