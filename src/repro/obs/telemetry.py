"""Live telemetry: background sampler, JSONL ring and threshold alerts.

Everything else in :mod:`repro.obs` is post-hoc — manifests, history
and reports only exist after a run finishes.  This module provides the
*live* half for long-running workloads (fault campaigns, tiled sweeps,
the future serving layer):

* :func:`build_sample` — one point-in-time telemetry sample: process
  RSS/CPU, the full counter/gauge snapshot, per-histogram streaming
  quantiles (p50/p95/p99 from the bucket sketch), derived rates
  (tasks/s, retries/s, mapping-cache hit rate), campaign progress/ETA
  and the currently-open spans;
* :class:`TelemetrySampler` — a daemon thread writing one sample per
  ``REPRO_TELEMETRY_INTERVAL`` seconds to an append-only
  ``runs/<run>-telemetry.jsonl`` file while keeping a bounded
  in-memory ring for the dashboard and the ``/telemetry.json``
  endpoint;
* :class:`AlertEvaluator` — small threshold rules (queue depth, task
  retry rate, RSS ceiling) evaluated per sample, emitting structured
  log events on every state transition.

The sampler is opt-in (``REPRO_TELEMETRY=1`` or the CLI's embedded
start-up); with it off, nothing here runs and the existing <5%
disabled-overhead guarantee is untouched.  Serving the samples over
HTTP is :mod:`repro.obs.openmetrics`'s job.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.config import knobs
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.log import get_logger

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_PORT_ENV",
    "TELEMETRY_INTERVAL_ENV",
    "QUANTILE_POINTS",
    "AlertRule",
    "AlertEvaluator",
    "DEFAULT_ALERTS",
    "TelemetrySampler",
    "build_sample",
    "process_rss_bytes",
    "process_cpu_seconds",
    "telemetry_enabled",
    "telemetry_interval",
    "telemetry_port",
]

TELEMETRY_ENV = "REPRO_TELEMETRY"
"""Set to ``1`` to start the sampler + exposition endpoint for a run."""

TELEMETRY_PORT_ENV = "REPRO_TELEMETRY_PORT"
"""Exposition endpoint port (``0`` = pick a free ephemeral port)."""

TELEMETRY_INTERVAL_ENV = "REPRO_TELEMETRY_INTERVAL"
"""Seconds between telemetry samples."""

QUANTILE_POINTS: Tuple[float, ...] = (0.5, 0.95, 0.99)
"""Quantiles reported for every registry histogram in each sample."""

_log = get_logger("obs.telemetry")

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def telemetry_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for the live layer."""
    return knobs.get_bool(TELEMETRY_ENV)


def telemetry_port() -> int:
    """The configured exposition port (default 9464, ``0`` = ephemeral)."""
    value = knobs.get_int(TELEMETRY_PORT_ENV)
    return int(value) if value is not None else 9464


def telemetry_interval() -> float:
    """Seconds between samples (floored at 50ms to bound self-load)."""
    value = knobs.get_float(TELEMETRY_INTERVAL_ENV)
    return max(0.05, float(value) if value is not None else 1.0)


def process_rss_bytes() -> Optional[int]:
    """Current resident set size of this process, or ``None``.

    Reads ``/proc/self/statm`` (Linux); falls back to the
    ``resource`` peak RSS (a high-water mark, not the live value) on
    other platforms, and ``None`` when neither source exists.
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kib) * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return None


def process_cpu_seconds() -> float:
    """User+system CPU seconds consumed by this process so far."""
    times = os.times()
    return float(times.user + times.system)


@dataclass(frozen=True)
class AlertRule:
    """One threshold condition over a sample field.

    ``field`` is a dotted path into the sample dict (e.g.
    ``gauges.executor_queue_depth`` or ``derived.resilient_retry_rate``);
    a missing field never fires.
    """

    name: str
    field: str
    op: str
    threshold: float
    description: str

    def __post_init__(self) -> None:
        if self.op not in (">", ">=", "<", "<="):
            raise ValueError(f"unknown alert comparator {self.op!r}")

    def value_from(self, sample: Dict[str, object]) -> Optional[float]:
        node: object = sample
        for part in self.field.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        if isinstance(node, bool) or not isinstance(node, (int, float)):
            return None
        return float(node)

    def firing(self, sample: Dict[str, object]) -> bool:
        value = self.value_from(sample)
        if value is None:
            return False
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold


DEFAULT_ALERTS: Tuple[AlertRule, ...] = (
    AlertRule(
        "executor-queue-depth",
        "gauges.executor_queue_depth",
        ">",
        1000.0,
        "More than 1000 tasks waiting on the executor: the run is "
        "submitting faster than workers drain.",
    ),
    AlertRule(
        "task-retry-rate",
        "derived.resilient_retry_rate",
        ">",
        0.5,
        "Resilient executor retrying/resubmitting more than one task "
        "every 2s: workers are failing or being killed.",
    ),
    AlertRule(
        "rss-ceiling",
        "process.rss_bytes",
        ">",
        6 * 1024 ** 3,
        "Process resident memory above 6 GiB: a sweep is holding too "
        "many trained systems or trial stacks alive.",
    ),
)
"""The stock alert set: queue depth, retry rate, memory ceiling."""


class AlertEvaluator:
    """Evaluate threshold rules per sample; log every state change."""

    def __init__(self, rules: Sequence[AlertRule] = DEFAULT_ALERTS) -> None:
        self.rules = tuple(rules)
        self.states: Dict[str, bool] = {rule.name: False for rule in self.rules}

    def evaluate(self, sample: Dict[str, object]) -> Dict[str, bool]:
        """Update alert states from ``sample``; returns the new states.

        Transitions emit structured log events (``warning`` on fire,
        ``info`` on clear) and bump the ``telemetry_alerts_fired``
        counter, so alert history survives in the JSONL log sink and
        the run manifest even if nobody watched the dashboard live.
        """
        for rule in self.rules:
            firing = rule.firing(sample)
            if firing and not self.states[rule.name]:
                _metrics.counter("telemetry_alerts_fired").inc()
                _log.warning(
                    "alert firing",
                    extra={"fields": {
                        "alert": rule.name,
                        "field": rule.field,
                        "value": rule.value_from(sample),
                        "threshold": rule.threshold,
                        "description": rule.description,
                    }},
                )
            elif not firing and self.states[rule.name]:
                _log.info(
                    "alert cleared",
                    extra={"fields": {"alert": rule.name, "field": rule.field}},
                )
            self.states[rule.name] = firing
        return dict(self.states)


def _histogram_digest(
    summaries: Dict[str, Dict[str, object]],
) -> Dict[str, Dict[str, float]]:
    """Compact per-histogram view: count/mean plus the quantile points."""
    digest: Dict[str, Dict[str, float]] = {}
    for name, summary in summaries.items():
        if not summary or not summary.get("count"):
            continue
        entry = {
            "count": float(summary["count"]),
            "mean": float(summary["mean"]),
            "max": float(summary["max"]),
        }
        for q in QUANTILE_POINTS:
            label = f"p{str(round(q * 100, 1)).rstrip('0').rstrip('.')}"
            entry[label] = _metrics.quantile_from_summary(summary, q)
        digest[name] = entry
    return digest


def _derived_fields(
    counters: Dict[str, float],
    gauges: Dict[str, float],
    previous: Optional[Dict[str, object]],
    now: float,
) -> Dict[str, float]:
    """Rates and ratios computed from the raw snapshot.

    Rates need a previous sample; the first sample reports only the
    ratio-style fields (hit rates, progress).
    """
    derived: Dict[str, float] = {}
    hits = counters.get("mapping_cache_hits", 0.0)
    misses = counters.get("mapping_cache_misses", 0.0)
    if hits + misses > 0:
        derived["mapping_cache_hit_rate"] = hits / (hits + misses)
    total = gauges.get("campaign_cells_total", 0.0)
    done = counters.get("campaign_cells", 0.0)
    if total > 0:
        progress = min(1.0, done / total)
        derived["campaign_progress"] = progress
        started = gauges.get("campaign_started_unixtime", 0.0)
        if done > 0 and started > 0 and now > started:
            per_cell = (now - started) / done
            derived["campaign_eta_seconds"] = max(0.0, (total - done) * per_cell)
    if previous is not None:
        elapsed = now - float(previous.get("ts", now))
        if elapsed > 0:
            prev_counters = previous.get("counters")
            prev_counters = prev_counters if isinstance(prev_counters, dict) else {}
            for name, rate_name in (
                ("executor_tasks", "executor_task_rate"),
                ("mc_trials_evaluated", "mc_trial_rate"),
                ("crossbar_macs", "crossbar_mac_rate"),
                ("forward_passes", "forward_pass_rate"),
            ):
                delta = counters.get(name, 0.0) - float(prev_counters.get(name, 0.0))
                if delta > 0:
                    derived[rate_name] = delta / elapsed
            retry_like = sum(
                counters.get(name, 0.0) - float(prev_counters.get(name, 0.0))
                for name in (
                    "resilient_retries",
                    "resilient_timeouts",
                    "resilient_crashes",
                    "resilient_resubmissions",
                )
            )
            derived["resilient_retry_rate"] = max(0.0, retry_like) / elapsed
            prev_process = previous.get("process")
            prev_process = prev_process if isinstance(prev_process, dict) else {}
            prev_cpu = prev_process.get("cpu_seconds")
            if isinstance(prev_cpu, (int, float)):
                cpu_delta = process_cpu_seconds() - float(prev_cpu)
                derived["cpu_utilization"] = max(0.0, cpu_delta) / elapsed
    return derived


def build_sample(
    previous: Optional[Dict[str, object]] = None,
    registry: Optional[_metrics.MetricsRegistry] = None,
) -> Dict[str, object]:
    """One point-in-time telemetry sample (JSON-safe dict).

    Fields: ``ts``, ``process`` (rss/cpu), ``counters``/``gauges`` (the
    raw snapshot), ``histograms`` (count/mean/max + p50/p95/p99 from
    the streaming sketch), ``derived`` (rates, hit rates, campaign
    progress/ETA), and ``active_spans`` (open span paths + elapsed,
    when tracing is on).
    """
    registry = registry if registry is not None else _metrics.REGISTRY
    snap = registry.snapshot()
    now = time.time()
    counters = {k: float(v) for k, v in snap["counters"].items()}
    gauges = {k: float(v) for k, v in snap["gauges"].items()}
    sample: Dict[str, object] = {
        "ts": now,
        "process": {
            "pid": os.getpid(),
            "rss_bytes": process_rss_bytes(),
            "cpu_seconds": process_cpu_seconds(),
        },
        "counters": counters,
        "gauges": gauges,
        "histograms": _histogram_digest(snap["histograms"]),
        "derived": _derived_fields(counters, gauges, previous, now),
        "active_spans": [
            {"path": info["path"], "elapsed": round(float(info["elapsed"]), 3)}
            for info in _trace.active_spans()
        ],
    }
    return sample


class TelemetrySampler:
    """Background thread appending samples to a JSONL ring.

    Parameters
    ----------
    interval:
        Seconds between samples (default ``REPRO_TELEMETRY_INTERVAL``).
    run_dir:
        Directory for the ``<stamp>-<experiment>-telemetry.jsonl`` file
        (default ``REPRO_RUN_DIR`` / ``runs``); ``path`` overrides the
        full file path.  ``run_dir=None`` with ``path=None`` resolves
        the knob like run manifests do.
    experiment:
        Run label embedded in the filename and every sample.
    ring_size:
        Bound on the in-memory sample ring the dashboard reads.
    alerts:
        Threshold rules (default :data:`DEFAULT_ALERTS`).
    """

    def __init__(
        self,
        interval: Optional[float] = None,
        run_dir: "Optional[str | pathlib.Path]" = None,
        experiment: str = "run",
        path: "Optional[str | pathlib.Path]" = None,
        ring_size: int = 600,
        alerts: Sequence[AlertRule] = DEFAULT_ALERTS,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.interval = float(interval) if interval is not None else telemetry_interval()
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        self.experiment = experiment
        self.ring: Deque[Dict[str, object]] = deque(maxlen=max(2, int(ring_size)))
        self.evaluator = AlertEvaluator(alerts)
        self._registry = registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last: Optional[Dict[str, object]] = None
        self._jitter = _metrics.P2Quantile(0.99)
        if path is not None:
            self.path = pathlib.Path(path)
        else:
            if run_dir is None:
                run_dir = knobs.get_path("REPRO_RUN_DIR") or "runs"
            stamp = time.strftime("%Y%m%dT%H%M%S")
            self.path = pathlib.Path(run_dir) / f"{stamp}-{experiment}-telemetry.jsonl"

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "TelemetrySampler":
        """Start the daemon sampler thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        _log.info(
            "telemetry sampler started",
            extra={"fields": {"path": os.fspath(self.path),
                              "interval": self.interval}},
        )
        return self

    def stop(self) -> None:
        """Stop the thread, taking one final sample for the ring/file."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(2.0, 4 * self.interval))
            self._thread = None
        self.sample_once()

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------

    def sample_once(self) -> Dict[str, object]:
        """Take, record and return one sample (also used by tests)."""
        sample = build_sample(self._last, registry=self._registry)
        sample["experiment"] = self.experiment
        sample["alerts"] = self.evaluator.evaluate(sample)
        self._last = sample
        self.ring.append(sample)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(sample, default=str) + "\n")
        except OSError:
            _log.warning(
                "telemetry append failed",
                extra={"fields": {"path": os.fspath(self.path)}},
            )
        return sample

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            t0 = time.perf_counter()
            self.sample_once()
            self._jitter.observe(time.perf_counter() - t0)

    # -- views --------------------------------------------------------

    def samples(self) -> List[Dict[str, object]]:
        """The in-memory ring, oldest first."""
        return list(self.ring)

    def latest(self) -> Optional[Dict[str, object]]:
        return self.ring[-1] if self.ring else None

    @property
    def alert_states(self) -> Dict[str, bool]:
        return dict(self.evaluator.states)

    def sampling_cost_p99(self) -> float:
        """P² p99 of one sample's own cost (self-overhead telemetry)."""
        return self._jitter.value
