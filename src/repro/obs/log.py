"""Structured logging for the experiment pipeline.

Every module gets a named child of the ``repro`` logger hierarchy via
:func:`get_logger`.  Configuration is lazy and environment-driven:

* ``REPRO_LOG`` sets the level (``debug`` / ``info`` / ``warning`` /
  ``error``; default ``warning``, so the pipeline is silent unless
  asked);
* ``REPRO_LOG_JSON`` names a file that additionally receives every
  record as one JSON object per line (machine-readable sink).

Diagnostics always go to **stderr** so result tables printed by
``python -m repro`` stay alone on stdout and redirecting stdout
captures only the artifact::

    REPRO_LOG=info python -m repro table1 > results.txt

Structured key-value payloads ride on the standard :mod:`logging`
``extra`` mechanism::

    log = get_logger("core.dse")
    log.info("hidden search done", extra={"fields": {"hidden": 32}})

The human sink renders ``fields`` appended to the message; the JSONL
sink emits them as a nested object, so the line round-trips through
``json.loads``.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

from repro.config import knobs

__all__ = [
    "LOG_ENV",
    "LOG_JSON_ENV",
    "JsonlFormatter",
    "configure",
    "get_logger",
    "level_from_env",
]

LOG_ENV = "REPRO_LOG"
"""Environment variable selecting the log level (name or number)."""

LOG_JSON_ENV = "REPRO_LOG_JSON"
"""Environment variable naming the JSONL log sink file."""

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_configured = False


def level_from_env(default: int = logging.WARNING) -> int:
    """Resolve the level named by ``REPRO_LOG`` (default WARNING)."""
    raw = (knobs.get_raw(LOG_ENV) or "").strip().lower()
    if not raw:
        return default
    if raw in _LEVELS:
        return _LEVELS[raw]
    try:
        return int(raw)
    except ValueError:
        return default


class _StderrHandler(logging.StreamHandler):
    """Stream handler that resolves ``sys.stderr`` at *emit* time.

    Binding the stream lazily keeps logging working when the process
    swaps ``sys.stderr`` after configuration (pytest's capture does).
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self) -> IO[str]:
        return sys.stderr


class _HumanFormatter(logging.Formatter):
    """Console format; appends the structured ``fields`` payload."""

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = getattr(record, "fields", None)
        if fields:
            kv = " ".join(f"{k}={v}" for k, v in fields.items())
            return f"{base} [{kv}]"
        return base


class JsonlFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = fields
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure(
    level: "Optional[int | str]" = None,
    json_path: Optional[str] = None,
    stream: Optional[IO[str]] = None,
    force: bool = False,
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger.

    Parameters
    ----------
    level:
        Level name or number; defaults to ``REPRO_LOG`` / WARNING.
    json_path:
        JSONL sink file; defaults to ``REPRO_LOG_JSON`` (unset = no
        JSON sink).
    stream:
        Human sink stream (default ``sys.stderr``).
    force:
        Reinstall handlers even if already configured (the CLI's
        ``--log-level`` path).
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER)
    if _configured and not force:
        return root
    if isinstance(level, str):
        level = _LEVELS.get(level.strip().lower(), logging.WARNING)
    root.setLevel(level if level is not None else level_from_env())
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
    human = logging.StreamHandler(stream) if stream is not None else _StderrHandler()
    human.setFormatter(
        _HumanFormatter("%(asctime)s %(levelname)-7s %(name)s | %(message)s", "%H:%M:%S")
    )
    root.addHandler(human)
    json_path = json_path if json_path is not None else knobs.get_path(LOG_JSON_ENV)
    if json_path:
        sink = logging.FileHandler(json_path, encoding="utf-8")
        sink.setFormatter(JsonlFormatter())
        root.addHandler(sink)
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """Logger for one module, e.g. ``get_logger("nn.trainer")``.

    Configures the hierarchy from the environment on first use.
    """
    if not _configured:
        configure()
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
