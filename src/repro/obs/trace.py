"""Span-based wall-clock tracing for the experiment pipeline.

A *span* measures one named stage of a run::

    from repro.obs.trace import span

    with span("table1/fft/train", epochs=300) as sp:
        ...work...
        sp.set(final_loss=0.012)

Spans nest via a per-thread stack: a span opened inside another
records the full slash-joined path (``table1/row:fft/train``), so the
flat record list reconstructs the tree.  Tracing is **off by default**
— ``span()`` then returns a shared no-op object whose enter/exit cost
is a single global check, keeping hot paths clean.  Enable with the
``REPRO_TRACE=1`` environment variable, the CLI's ``--trace`` flag, or
:func:`enable`.

The collector is thread-safe (one lock-guarded list per process) and
*process-mergeable*: :mod:`repro.parallel` executors ship the spans a
worker produced back to the parent (see :func:`mark`,
:func:`records_since`, :func:`absorb`), so a ``ProcessExecutor`` sweep
yields the same tree a serial run would.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.config import knobs

__all__ = [
    "TRACE_ENV",
    "SpanRecord",
    "span",
    "enabled",
    "enable",
    "set_context",
    "current_path",
    "get_records",
    "active_spans",
    "clear",
    "mark",
    "records_since",
    "absorb",
    "span_tree",
    "render_tree",
]

TRACE_ENV = "REPRO_TRACE"
"""Set to ``1`` to enable span collection."""

_lock = threading.RLock()
_records: "List[SpanRecord]" = []
_active: "Dict[int, Dict[str, object]]" = {}
_seq = itertools.count()
_state = threading.local()
_enabled: "Optional[bool]" = None
"""Tri-state: None = not yet resolved from the REPRO_TRACE knob.
Resolved on first use (never at import time — repro-lint RPR008) so
tests and callers can set the environment after importing the module."""


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (picklable, so workers can ship it home)."""

    name: str
    path: str
    start: float
    """Wall-clock start (``time.time()``, comparable across processes)."""
    duration: float
    """Wall time in seconds (monotonic clock)."""
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    thread: str = ""
    seq: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def enabled() -> bool:
    global _enabled
    if _enabled is None:
        _enabled = knobs.get_bool(TRACE_ENV)
    return _enabled


def enable(on: bool = True) -> None:
    """Turn span collection on/off for this process."""
    global _enabled
    _enabled = bool(on)


def _stack() -> List[str]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def set_context(path: str) -> None:
    """Seed this thread's span stack with a parent path.

    Executor workers call this so their spans nest under the span that
    launched the sweep (``path`` is the launcher's
    :func:`current_path`).
    """
    _state.stack = [part for part in path.split("/") if part]


def current_path() -> str:
    """Slash-joined path of the innermost open span ("" at top level)."""
    return "/".join(_stack())


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "path", "_t0", "_wall")

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = _stack()
        stack.append(self.name)
        self.path = "/".join(stack)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        with _lock:
            _active[id(self)] = {
                "name": self.name,
                "path": self.path,
                "start": self._wall,
                "pid": os.getpid(),
                "thread": threading.current_thread().name,
            }
        return self

    def set(self, **attrs) -> "_Span":
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        record = SpanRecord(
            name=self.name,
            path=self.path,
            start=self._wall,
            duration=duration,
            attrs=dict(self.attrs),
            pid=os.getpid(),
            thread=threading.current_thread().name,
            seq=next(_seq),
        )
        with _lock:
            _active.pop(id(self), None)
            _records.append(record)


def span(name: str, **attrs):
    """Open a span; a no-op unless tracing is enabled."""
    if not enabled():
        return _NOOP
    return _Span(name, attrs)


def get_records() -> List[SpanRecord]:
    """Snapshot of all collected spans, in completion order."""
    with _lock:
        return list(_records)


def active_spans() -> List[Dict[str, object]]:
    """Spans currently open in this process, outermost first.

    The live-telemetry sampler and the ``python -m repro top``
    dashboard use this to show *where the run is right now*; each
    entry carries ``name``/``path``/``start``/``pid``/``thread`` plus
    a derived ``elapsed`` in seconds.  Empty when tracing is off.
    """
    now = time.time()
    with _lock:
        spans = [dict(info) for info in _active.values()]
    for info in spans:
        info["elapsed"] = max(0.0, now - float(info["start"]))  # type: ignore[arg-type]
    spans.sort(key=lambda info: info["start"])  # type: ignore[arg-type,return-value]
    return spans


def clear() -> None:
    with _lock:
        _records.clear()
        _active.clear()


def mark() -> int:
    """Position marker; pair with :func:`records_since`."""
    with _lock:
        return len(_records)


def records_since(marker: int) -> List[SpanRecord]:
    """Spans completed after ``marker`` (what a worker ships home)."""
    with _lock:
        return list(_records[marker:])


def absorb(records: Sequence[SpanRecord], prefix: str = "") -> None:
    """Merge spans shipped from a worker into this process's collector."""
    if not records:
        return
    if prefix:
        records = [
            replace(r, path=f"{prefix}/{r.path}", seq=next(_seq)) for r in records
        ]
    with _lock:
        _records.extend(records)


def span_tree(records: Optional[Sequence[SpanRecord]] = None) -> Dict[str, object]:
    """Aggregate records into a nested tree keyed by span path.

    Sibling spans sharing a path (e.g. repeated rounds) merge into one
    node with ``count``/``total_seconds`` accumulated; ``attrs`` keeps
    the last occurrence's attributes.
    """
    if records is None:
        records = get_records()

    def _node(name: str, path: str) -> Dict[str, object]:
        return {
            "name": name,
            "path": path,
            "count": 0,
            "total_seconds": 0.0,
            "attrs": {},
            "children": {},
        }

    root = _node("", "")
    for record in sorted(records, key=lambda r: (r.start, r.seq)):
        parts = [p for p in record.path.split("/") if p]
        node = root
        for depth, part in enumerate(parts):
            children = node["children"]
            if part not in children:
                children[part] = _node(part, "/".join(parts[: depth + 1]))
            node = children[part]
        node["count"] += 1
        node["total_seconds"] += record.duration
        node["attrs"] = dict(record.attrs)

    def _finalize(node: Dict[str, object]) -> Dict[str, object]:
        node["total_seconds"] = round(float(node["total_seconds"]), 6)
        node["children"] = [_finalize(c) for c in node["children"].values()]
        return node

    return _finalize(root)


def render_tree(tree: Optional[Dict[str, object]] = None, indent: str = "  ") -> str:
    """Human-readable span tree (for logs and docs)."""
    if tree is None:
        tree = span_tree()

    lines: List[str] = []

    def _walk(node: Dict[str, object], depth: int) -> None:
        if node["name"]:
            count = f" x{node['count']}" if node["count"] > 1 else ""
            lines.append(
                f"{indent * depth}{node['name']}{count}  {node['total_seconds']:.3f}s"
            )
        for child in node["children"]:
            _walk(child, depth + (1 if node["name"] else 0))

    _walk(tree, 0)
    return "\n".join(lines)
