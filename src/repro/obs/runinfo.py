"""Run manifests: provenance + telemetry for every experiment run.

A *manifest* answers "which code, on which machine, with which knobs,
produced this number, and where did the time go": git SHA, hostname,
Python/NumPy versions, every ``REPRO_*`` environment knob, the seed
and scale, the collected span tree and a metrics snapshot.  Experiment
drivers write one per run to ``runs/<timestamp>-<experiment>.json``
(directory overridable via ``--run-dir`` / ``REPRO_RUN_DIR``).

Benchmark harnesses embed :func:`provenance_header` in their archived
JSON payloads so BENCH trajectories stay comparable across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import socket
import subprocess
import time
from dataclasses import asdict, is_dataclass
from typing import Dict, Optional, Sequence

from repro.config import knobs
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "RUN_DIR_ENV",
    "git_sha",
    "git_dirty",
    "repro_env",
    "environment_info",
    "provenance_header",
    "build_manifest",
    "write_manifest",
]

RUN_DIR_ENV = "REPRO_RUN_DIR"
"""Environment variable overriding the default ``runs/`` directory."""

DEFAULT_RUN_DIR = "runs"


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """HEAD commit of the enclosing git checkout, or None."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def git_dirty(cwd: Optional[str] = None) -> Optional[bool]:
    """True when the checkout has uncommitted changes, None if unknown.

    A dirty tree makes the recorded ``git_sha`` an unreliable
    provenance key — benchmark archives stamped from one are not
    attributable to any commit, which is why ``run_bench`` warns (and
    the CLI refuses ``--write-baseline``) on dirty checkouts.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return bool(out.stdout.strip())


def repro_env() -> Dict[str, str]:
    """All ``REPRO_*`` environment knobs currently set."""
    return knobs.snapshot()


def _package_version() -> Optional[str]:
    """``repro.__version__`` (lazy import: obs must not cycle into repro)."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - package metadata always present
        return None


def environment_info() -> Dict[str, object]:
    """Host / toolchain / knob provenance."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    # Lazy import: repro.parallel imports repro.obs at module level,
    # so the reverse edge must stay inside the function body.
    from repro.parallel.executor import EXECUTOR_ENV, resolve_workers

    executor_kind = (knobs.get_str(EXECUTOR_ENV) or "process").strip() or "process"
    executor_workers = resolve_workers()
    return {
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "version": _package_version(),
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        # What the sweeps will actually use, not just what the host
        # has: BENCH provenance was recording ``cpu_count`` while the
        # executors ran with REPRO_WORKERS (often 1), which made
        # parallel benchmark archives unreproducible.
        "executor_workers": executor_workers,
        "executor_kind": executor_kind if executor_workers > 1 else "serial",
        "pid": os.getpid(),
        "repro_env": repro_env(),
    }


def provenance_header(**extra: object) -> Dict[str, object]:
    """Provenance block for archived benchmark payloads."""
    header: Dict[str, object] = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        **environment_info(),
    }
    header.update(extra)
    return header


def _scale_dict(scale: object) -> object:
    if scale is None:
        return None
    if is_dataclass(scale) and not isinstance(scale, type):
        return asdict(scale)
    return str(scale)


def build_manifest(
    experiment: str,
    seed: Optional[int] = None,
    scale: object = None,
    argv: Optional[Sequence[str]] = None,
    extra: Optional[Dict[str, object]] = None,
    spans: Optional[Sequence[_trace.SpanRecord]] = None,
    metrics_snapshot: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Assemble the manifest dict (spans/metrics default to the
    process-wide collectors' current contents)."""
    if spans is None:
        spans = _trace.get_records()
    if metrics_snapshot is None:
        metrics_snapshot = _metrics.snapshot()
    tree = _trace.span_tree(spans)
    return {
        "experiment": experiment,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "seed": seed,
        "scale": _scale_dict(scale),
        "argv": list(argv) if argv is not None else None,
        "environment": environment_info(),
        "metrics": metrics_snapshot,
        "span_tree": tree,
        "spans": [record.to_dict() for record in spans],
        **(extra or {}),
    }


def write_manifest(
    experiment: str,
    run_dir: "Optional[str | pathlib.Path]" = None,
    **kwargs: object,
) -> pathlib.Path:
    """Write ``<run_dir>/<timestamp>-<experiment>.json``; return its path.

    ``run_dir`` resolves explicit argument > ``REPRO_RUN_DIR`` >
    ``runs/`` under the current directory.
    """
    if run_dir is None:
        run_dir = knobs.get_path(RUN_DIR_ENV) or DEFAULT_RUN_DIR
    directory = pathlib.Path(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S")
    path = directory / f"{stamp}-{experiment}.json"
    counter = 1
    while path.exists():
        path = directory / f"{stamp}-{experiment}.{counter}.json"
        counter += 1
    manifest = build_manifest(experiment, **kwargs)
    path.write_text(json.dumps(manifest, indent=2, default=str) + "\n", encoding="utf-8")
    return path
