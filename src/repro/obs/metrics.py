"""Lightweight metrics registry: counters, gauges, histograms.

The pipeline's quantitative telemetry — epochs run, Monte-Carlo trials
evaluated, crossbar MACs issued, MNA solves, executor task latencies —
accumulates in one process-wide :class:`MetricsRegistry`.  Call sites
are coarse (one update per training run / forward pass / solve), so
the registry is always on; a metric update is a dict lookup plus a
lock-guarded add.

Cross-process sweeps: a :class:`ProcessExecutor` worker snapshots the
registry before and after each task and ships the :func:`diff` home,
where the parent :func:`merge`\\ s it — so ``snapshot()`` after a
parallel sweep matches the serial run's totals.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge",
    "diff",
    "clear",
    "reset",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-set value (e.g. worker utilization of the latest sweep)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming summary: count, sum, min, max (and derived mean)."""

    __slots__ = ("_lock", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        values = [float(v) for v in values]
        if not values:
            return
        with self._lock:
            self.count += len(values)
            self.sum += sum(values)
            self.min = min(self.min, min(values))
            self.max = max(self.max, max(values))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": None}
            return {
                "count": self.count,
                "sum": round(self.sum, 9),
                "min": self.min,
                "max": self.max,
                "mean": self.sum / self.count,
            }


class MetricsRegistry:
    """Named metric store with snapshot / merge / diff support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict (JSON/pickle-safe) view of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {k: v.summary() for k, v in sorted(histograms.items())},
        }

    def merge(self, snap: Dict[str, Dict[str, object]]) -> None:
        """Fold a snapshot (typically a worker's :func:`diff`) in.

        Counters add; gauges take the incoming value; histograms
        combine count/sum/min/max.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in snap.get("histograms", {}).items():
            if not summary or not summary.get("count"):
                continue
            metric = self.histogram(name)
            with metric._lock:
                metric.count += int(summary["count"])
                metric.sum += float(summary["sum"])
                if summary.get("min") is not None:
                    metric.min = min(metric.min, float(summary["min"]))
                if summary.get("max") is not None:
                    metric.max = max(metric.max, float(summary["max"]))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def diff(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """What happened between two snapshots (worker-task attribution).

    Counter and histogram count/sum deltas are exact; a histogram's
    min/max come from the ``after`` snapshot (a bound, not the exact
    window extremum); gauges are included only when they changed.
    """
    out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, value in after.get("counters", {}).items():
        delta = float(value) - float(before.get("counters", {}).get(name, 0.0))
        if delta > 0:
            out["counters"][name] = delta
    for name, value in after.get("gauges", {}).items():
        if before.get("gauges", {}).get(name) != value:
            out["gauges"][name] = value
    for name, summary in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name) or {"count": 0, "sum": 0.0}
        count = int(summary.get("count", 0)) - int(prior.get("count", 0))
        if count > 0:
            out["histograms"][name] = {
                "count": count,
                "sum": float(summary.get("sum", 0.0)) - float(prior.get("sum", 0.0)),
                "min": summary.get("min"),
                "max": summary.get("max"),
            }
    return out


REGISTRY = MetricsRegistry()
"""The process-wide default registry."""


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def snapshot() -> Dict[str, Dict[str, object]]:
    return REGISTRY.snapshot()


def merge(snap: Optional[Dict[str, Dict[str, object]]]) -> None:
    if snap:
        REGISTRY.merge(snap)


def clear() -> None:
    REGISTRY.clear()


def reset() -> None:
    """Drop every metric in the process-wide registry.

    The public isolation hook: the test suite's autouse fixture calls
    this between tests so counters accumulated by one test never leak
    into another's snapshot, and long-lived services can call it at
    window boundaries.
    """
    REGISTRY.clear()
