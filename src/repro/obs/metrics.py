"""Lightweight metrics registry: counters, gauges, histograms.

The pipeline's quantitative telemetry — epochs run, Monte-Carlo trials
evaluated, crossbar MACs issued, MNA solves, executor task latencies —
accumulates in one process-wide :class:`MetricsRegistry`.  Call sites
are coarse (one update per training run / forward pass / solve), so
the registry is always on; a metric update is a dict lookup plus a
lock-guarded add.

Histograms are *streaming quantile sketches*: alongside
count/sum/min/max they bin every observation into a fixed, log-spaced
bucket ladder (:data:`BUCKET_BOUNDS`), so p50/p95/p99 are available
*during* a run (:meth:`Histogram.quantile`) without storing samples —
bounded memory, and exactly mergeable across processes because every
histogram shares the same bucket bounds.  :class:`P2Quantile`
implements the classic P² single-quantile estimator for call sites
that need a tighter (but non-mergeable) streaming estimate.

Cross-process sweeps: a :class:`ProcessExecutor` worker snapshots the
registry before and after each task and ships the :func:`diff` home,
where the parent :func:`merge`\\ s it — so ``snapshot()`` after a
parallel sweep matches the serial run's totals, bucket for bucket.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge",
    "diff",
    "clear",
    "reset",
    "quantile_from_summary",
]

BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    mantissa * (10.0 ** exponent)
    for exponent in range(-4, 4)
    for mantissa in (1.0, 2.5, 5.0)
) + (math.inf,)
"""Shared upper bucket bounds (1-2.5-5 per decade, 100µs..5000s, +Inf).

One fixed ladder for every histogram keeps sketches exactly mergeable
across workers and runs: merging is element-wise bucket addition, so a
``ProcessExecutor`` sweep reports the same quantile estimates a serial
run would."""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-set value (e.g. worker utilization of the latest sweep)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (live up/down tracking, e.g.
        active shared-memory bytes or executor queue depth)."""
        with self._lock:
            self.value += float(delta)


class Histogram:
    """Streaming quantile sketch: count/sum/min/max plus bucket counts.

    Observations bin into the shared :data:`BUCKET_BOUNDS` ladder, so
    :meth:`quantile` answers p50/p95/p99 live, in bounded memory, and
    two sketches merge exactly (element-wise bucket addition).
    """

    __slots__ = ("_lock", "count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * len(BUCKET_BOUNDS)

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(BUCKET_BOUNDS, value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.buckets[index] += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        values = [float(v) for v in values]
        if not values:
            return
        indices = [bisect.bisect_left(BUCKET_BOUNDS, v) for v in values]
        with self._lock:
            self.count += len(values)
            self.sum += sum(values)
            for index in indices:
                self.buckets[index] += 1
            self.min = min(self.min, min(values))
            self.max = max(self.max, max(values))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate from the bucket sketch.

        Linear interpolation inside the bucket holding rank ``q``,
        clamped to the observed ``[min, max]``; NaN with no samples.
        """
        with self._lock:
            return quantile_from_summary(self._summary_locked(), q)

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        """Several quantiles in one lock acquisition (``{"p50": ...}``)."""
        with self._lock:
            summary = self._summary_locked()
        return {
            f"p{str(round(q * 100, 1)).rstrip('0').rstrip('.')}":
                quantile_from_summary(summary, q)
            for q in qs
        }

    def _summary_locked(self) -> Dict[str, object]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "buckets": list(self.buckets)}
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "buckets": list(self.buckets),
        }

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return self._summary_locked()


def quantile_from_summary(summary: Dict[str, object], q: float) -> float:
    """Quantile estimate from a histogram summary dict (snapshot form).

    Shared by :meth:`Histogram.quantile`, the telemetry sampler and the
    OpenMetrics exposition, so live endpoints and archived manifests
    agree on the estimator: walk the cumulative bucket counts to the
    bucket holding rank ``q``, interpolate linearly inside it, clamp to
    the recorded ``[min, max]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = int(summary.get("count") or 0)
    buckets = summary.get("buckets")
    if not count:
        return float("nan")
    lo = float(summary.get("min", 0.0) or 0.0)
    hi = float(summary.get("max", 0.0) or 0.0)
    if not isinstance(buckets, (list, tuple)) or len(buckets) != len(BUCKET_BOUNDS):
        # Sketch-less summary (e.g. an old manifest): fall back to the
        # recorded extrema, the only honest bound available.
        return lo if q <= 0.5 else hi
    rank = q * count
    cumulative = 0.0
    for index, bucket_count in enumerate(buckets):
        if not bucket_count:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank:
            lower = BUCKET_BOUNDS[index - 1] if index else 0.0
            upper = BUCKET_BOUNDS[index]
            if not math.isfinite(upper):
                upper = hi
            lower = max(lower, lo) if cumulative == bucket_count else lower
            fraction = (rank - previous) / bucket_count
            estimate = lower + fraction * max(0.0, upper - lower)
            return float(min(max(estimate, lo), hi))
    return hi


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Five markers track one quantile in O(1) memory and O(1) per
    observation, with much tighter estimates than the bucket sketch —
    but two P² estimators cannot be merged, so :class:`Histogram` keeps
    the mergeable bucket ladder for cross-process sweeps and this class
    serves single-process consumers (e.g. the telemetry sampler's
    interval jitter estimate, or tests cross-checking the sketch).
    """

    __slots__ = ("q", "_lock", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, q: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._lock = threading.Lock()
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._initial) < 5:
                self._initial.append(value)
                if len(self._initial) == 5:
                    self._initial.sort()
                    self._heights = list(self._initial)
                    self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                    q = self.q
                    self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
                return
            h, n = self._heights, self._positions
            if value < h[0]:
                h[0] = value
                k = 0
            elif value >= h[4]:
                h[4] = value
                k = 3
            else:
                k = next(i for i in range(4) if h[i] <= value < h[i + 1])
            for i in range(k + 1, 5):
                n[i] += 1.0
            q = self.q
            increments = (0.0, q / 2, q, (1 + q) / 2, 1.0)
            for i in range(5):
                self._desired[i] += increments[i]
            for i in (1, 2, 3):
                d = self._desired[i] - n[i]
                if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                    d <= -1.0 and n[i - 1] - n[i] < -1.0
                ):
                    step = 1.0 if d >= 1.0 else -1.0
                    parabolic = h[i] + step / (n[i + 1] - n[i - 1]) * (
                        (n[i] - n[i - 1] + step)
                        * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                        + (n[i + 1] - n[i] - step)
                        * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
                    )
                    if h[i - 1] < parabolic < h[i + 1]:
                        h[i] = parabolic
                    else:  # parabolic prediction left the bracket: linear
                        j = i + int(step)
                        h[i] = h[i] + step * (h[j] - h[i]) / (n[j] - n[i])
                    n[i] += step

    @property
    def value(self) -> float:
        """Current estimate (NaN before any sample; exact under 5)."""
        with self._lock:
            if self._heights:
                return float(self._heights[2])
            if not self._initial:
                return float("nan")
            ordered = sorted(self._initial)
            rank = min(len(ordered) - 1, int(round(self.q * (len(ordered) - 1))))
            return float(ordered[rank])


class MetricsRegistry:
    """Named metric store with snapshot / merge / diff support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict (JSON/pickle-safe) view of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {k: v.summary() for k, v in sorted(histograms.items())},
        }

    def merge(self, snap: Dict[str, Dict[str, object]]) -> None:
        """Fold a snapshot (typically a worker's :func:`diff`) in.

        Counters add; gauges take the incoming value; histograms
        combine count/sum/min/max.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in snap.get("histograms", {}).items():
            if not summary or not summary.get("count"):
                continue
            metric = self.histogram(name)
            buckets = summary.get("buckets")
            with metric._lock:
                metric.count += int(summary["count"])
                metric.sum += float(summary["sum"])
                if summary.get("min") is not None:
                    metric.min = min(metric.min, float(summary["min"]))
                if summary.get("max") is not None:
                    metric.max = max(metric.max, float(summary["max"]))
                if isinstance(buckets, (list, tuple)) and len(buckets) == len(
                    metric.buckets
                ):
                    for index, bucket_count in enumerate(buckets):
                        metric.buckets[index] += int(bucket_count)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def diff(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """What happened between two snapshots (worker-task attribution).

    Counter and histogram count/sum deltas are exact; a histogram's
    min/max come from the ``after`` snapshot (a bound, not the exact
    window extremum); gauges are included only when they changed.
    """
    out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, value in after.get("counters", {}).items():
        delta = float(value) - float(before.get("counters", {}).get(name, 0.0))
        if delta > 0:
            out["counters"][name] = delta
    for name, value in after.get("gauges", {}).items():
        if before.get("gauges", {}).get(name) != value:
            out["gauges"][name] = value
    for name, summary in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name) or {"count": 0, "sum": 0.0}
        count = int(summary.get("count", 0)) - int(prior.get("count", 0))
        if count > 0:
            delta: Dict[str, object] = {
                "count": count,
                "sum": float(summary.get("sum", 0.0)) - float(prior.get("sum", 0.0)),
                "min": summary.get("min"),
                "max": summary.get("max"),
            }
            after_buckets = summary.get("buckets")
            if isinstance(after_buckets, (list, tuple)):
                prior_buckets = prior.get("buckets") or [0] * len(after_buckets)
                delta["buckets"] = [
                    int(a) - int(b) for a, b in zip(after_buckets, prior_buckets)
                ]
            out["histograms"][name] = delta
    return out


REGISTRY = MetricsRegistry()
"""The process-wide default registry."""


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def snapshot() -> Dict[str, Dict[str, object]]:
    return REGISTRY.snapshot()


def merge(snap: Optional[Dict[str, Dict[str, object]]]) -> None:
    if snap:
        REGISTRY.merge(snap)


def clear() -> None:
    REGISTRY.clear()


def reset() -> None:
    """Drop every metric in the process-wide registry.

    The public isolation hook: the test suite's autouse fixture calls
    this between tests so counters accumulated by one test never leak
    into another's snapshot, and long-lived services can call it at
    window boundaries.
    """
    REGISTRY.clear()
