"""Live run dashboard: terminal ``top`` view and self-refreshing HTML.

Two render targets over the same telemetry samples:

* :func:`render_top_text` — a plain-refresh terminal frame (``python
  -m repro top``): process RSS/CPU, key counter rates, executor queue
  depth, campaign progress/ETA, per-histogram p50/p95/p99, alert
  states and the currently-open spans;
* :func:`render_dashboard_html` — the same data as a self-contained
  HTML page (``<meta http-equiv="refresh">``, inline SVG sparklines
  reused from :mod:`repro.obs.report`) served at ``/`` by
  :class:`~repro.obs.openmetrics.TelemetryServer`.

:func:`run_top` drives the terminal loop, reading samples either from
an in-process :class:`~repro.obs.telemetry.TelemetrySampler` or by
polling a remote endpoint's ``/telemetry.json``.  All output goes to a
caller-supplied stream — this module never writes to stdout itself
(the CLI passes its own stream), keeping repro-lint's RPR004 happy.
"""

from __future__ import annotations

import json
import time
import urllib.request
from html import escape
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from repro.obs.report import sparkline, stacked_budget_svg, svg_sparkline

__all__ = [
    "errorbudget_from_gauges",
    "render_top_text",
    "render_dashboard_html",
    "fetch_samples",
    "run_top",
]

_CLEAR = "\x1b[2J\x1b[H"

_RATE_FIELDS = (
    ("executor_task_rate", "tasks/s"),
    ("mc_trial_rate", "trials/s"),
    ("forward_pass_rate", "fwd/s"),
    ("crossbar_mac_rate", "MAC/s"),
    ("resilient_retry_rate", "retries/s"),
)


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    return f"{size:.1f}TiB"


def _fmt_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    if value < 120.0:
        return f"{value:.2f}s"
    minutes, seconds = divmod(value, 60.0)
    return f"{int(minutes)}m{seconds:02.0f}s"


def _series(
    samples: Sequence[Dict[str, object]], pick: Callable[[Dict[str, object]], object]
) -> List[float]:
    values: List[float] = []
    for sample in samples:
        value = pick(sample)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values.append(float(value))
    return values


def _get(sample: Dict[str, object], *path: str) -> object:
    node: object = sample
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def errorbudget_from_gauges(
    gauges: Dict[str, object],
) -> Dict[str, List[Tuple[str, float]]]:
    """Per-benchmark stage deltas out of published ``error_budget_*`` gauges.

    Only the ``error_budget_<bench>_<stage>_delta`` family is picked up
    (benchmark names contain no underscores, stage names may), sorted by
    descending delta so the dominant stage leads.
    """
    budgets: Dict[str, List[Tuple[str, float]]] = {}
    for name, value in gauges.items():
        if not (name.startswith("error_budget_") and name.endswith("_delta")):
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        core = name[len("error_budget_"):-len("_delta")]
        bench, _, stage = core.partition("_")
        if not bench or not stage:
            continue
        budgets.setdefault(bench, []).append((stage, float(value)))
    for stages in budgets.values():
        stages.sort(key=lambda item: -item[1])
    return budgets


def render_top_text(
    samples: Sequence[Dict[str, object]], clear: bool = True
) -> str:
    """One terminal frame of the live dashboard from the sample ring."""
    lines: List[str] = []
    if clear:
        lines.append(_CLEAR.rstrip("\n"))
    if not samples:
        lines.append("repro top — no telemetry samples yet")
        return "\n".join(lines) + "\n"
    latest = samples[-1]
    experiment = latest.get("experiment", "run")
    ts = time.strftime("%H:%M:%S", time.localtime(float(latest.get("ts", 0.0))))
    lines.append(f"repro top — {experiment} @ {ts}  ({len(samples)} samples)")
    rss = _get(latest, "process", "rss_bytes")
    cpu = _get(latest, "process", "cpu_seconds")
    util = _get(latest, "derived", "cpu_utilization")
    rss_spark = sparkline(_series(samples, lambda s: _get(s, "process", "rss_bytes"))[-40:])
    lines.append(
        f"  rss {_fmt_bytes(rss if isinstance(rss, (int, float)) else None):>10}  "
        f"{rss_spark}  cpu {float(cpu or 0.0):.1f}s"
        + (f"  util {float(util):.0%}" if isinstance(util, (int, float)) else "")
    )

    queue = _get(latest, "gauges", "executor_queue_depth")
    if isinstance(queue, (int, float)):
        spark = sparkline(
            _series(samples, lambda s: _get(s, "gauges", "executor_queue_depth"))[-40:]
        )
        lines.append(f"  queue depth {int(queue):>6}  {spark}")

    derived = latest.get("derived")
    if isinstance(derived, dict):
        rates = [
            f"{label} {float(derived[name]):.1f}"
            for name, label in _RATE_FIELDS
            if isinstance(derived.get(name), (int, float))
        ]
        if rates:
            lines.append("  rates: " + "  ".join(rates))
        hit_rate = derived.get("mapping_cache_hit_rate")
        if isinstance(hit_rate, (int, float)):
            lines.append(f"  mapping cache hit rate {float(hit_rate):.0%}")
        progress = derived.get("campaign_progress")
        if isinstance(progress, (int, float)):
            eta = derived.get("campaign_eta_seconds")
            bar_width = 30
            filled = int(round(bar_width * float(progress)))
            bar = "#" * filled + "-" * (bar_width - filled)
            eta_text = (
                f"  eta {_fmt_seconds(float(eta))}"
                if isinstance(eta, (int, float))
                else ""
            )
            lines.append(f"  campaign [{bar}] {float(progress):.0%}{eta_text}")

    histograms = latest.get("histograms")
    if isinstance(histograms, dict) and histograms:
        lines.append("  latency:")
        for name, digest in sorted(histograms.items()):
            if not isinstance(digest, dict):
                continue
            lines.append(
                f"    {name:<28} n={int(digest.get('count', 0)):>7} "
                f"p50 {_fmt_seconds(float(digest.get('p50', 0.0)))} "
                f"p95 {_fmt_seconds(float(digest.get('p95', 0.0)))} "
                f"p99 {_fmt_seconds(float(digest.get('p99', 0.0)))}"
            )

    gauges = latest.get("gauges")
    budgets = errorbudget_from_gauges(gauges) if isinstance(gauges, dict) else {}
    if budgets:
        lines.append("  error budget (top stages):")
        for bench, stages in sorted(budgets.items()):
            top = "  ".join(
                f"{stage} {delta:+.4f}" for stage, delta in stages[:3]
            )
            lines.append(f"    {bench:<12} {top}")

    alerts = latest.get("alerts")
    if isinstance(alerts, dict):
        firing = sorted(name for name, state in alerts.items() if state)
        lines.append(
            "  alerts: " + (", ".join(f"[{name}]" for name in firing) if firing else "none")
        )

    spans = latest.get("active_spans")
    if isinstance(spans, list) and spans:
        lines.append("  active spans:")
        for info in spans[:8]:
            if isinstance(info, dict):
                lines.append(
                    f"    {info.get('path', '?'):<40} "
                    f"{_fmt_seconds(float(info.get('elapsed', 0.0)))}"
                )
    return "\n".join(lines) + "\n"


def render_dashboard_html(
    samples: Sequence[Dict[str, object]], refresh_seconds: int = 2
) -> str:
    """Self-refreshing HTML dashboard over the sample ring."""
    body: List[str] = []
    if not samples:
        body.append("<p>No telemetry samples yet — the sampler warms up "
                    "after one interval.</p>")
    else:
        latest = samples[-1]
        experiment = escape(str(latest.get("experiment", "run")))
        ts = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(float(latest.get("ts", 0.0)))
        )
        body.append(f"<h1>repro · {experiment}</h1>")
        body.append(f"<p class='muted'>{ts} · {len(samples)} samples · "
                    f"refreshes every {refresh_seconds}s</p>")

        cards: List[str] = []
        rss_series = _series(samples, lambda s: _get(s, "process", "rss_bytes"))
        rss = rss_series[-1] if rss_series else None
        cards.append(
            "<div class='card'><h2>Memory</h2>"
            f"<div class='big'>{escape(_fmt_bytes(rss))}</div>"
            f"{svg_sparkline(rss_series[-120:])}</div>"
        )
        queue_series = _series(
            samples, lambda s: _get(s, "gauges", "executor_queue_depth")
        )
        if queue_series:
            cards.append(
                "<div class='card'><h2>Queue depth</h2>"
                f"<div class='big'>{int(queue_series[-1])}</div>"
                f"{svg_sparkline(queue_series[-120:])}</div>"
            )
        derived = samples[-1].get("derived")
        derived = derived if isinstance(derived, dict) else {}
        for name, label in _RATE_FIELDS:
            if not isinstance(derived.get(name), (int, float)):
                continue
            series = _series(samples, lambda s, n=name: _get(s, "derived", n))
            cards.append(
                f"<div class='card'><h2>{escape(label)}</h2>"
                f"<div class='big'>{float(derived[name]):.1f}</div>"
                f"{svg_sparkline(series[-120:])}</div>"
            )
        progress = derived.get("campaign_progress")
        if isinstance(progress, (int, float)):
            eta = derived.get("campaign_eta_seconds")
            eta_text = (
                f" · ETA {escape(_fmt_seconds(float(eta)))}"
                if isinstance(eta, (int, float))
                else ""
            )
            cards.append(
                "<div class='card'><h2>Campaign</h2>"
                f"<div class='big'>{float(progress):.0%}{eta_text}</div>"
                "<div class='bar'><div class='fill' "
                f"style='width:{float(progress) * 100:.1f}%'></div></div></div>"
            )
        body.append("<div class='cards'>" + "".join(cards) + "</div>")

        histograms = latest.get("histograms")
        if isinstance(histograms, dict) and histograms:
            rows = []
            for name, digest in sorted(histograms.items()):
                if not isinstance(digest, dict):
                    continue
                p50_series = _series(
                    samples, lambda s, n=name: _get(s, "histograms", n, "p50")
                )
                rows.append(
                    f"<tr><td>{escape(name)}</td>"
                    f"<td>{int(digest.get('count', 0))}</td>"
                    f"<td>{escape(_fmt_seconds(float(digest.get('p50', 0.0))))}</td>"
                    f"<td>{escape(_fmt_seconds(float(digest.get('p95', 0.0))))}</td>"
                    f"<td>{escape(_fmt_seconds(float(digest.get('p99', 0.0))))}</td>"
                    f"<td>{svg_sparkline(p50_series[-120:])}</td></tr>"
                )
            body.append(
                "<h2>Latency</h2><table><tr><th>histogram</th><th>count</th>"
                "<th>p50</th><th>p95</th><th>p99</th><th>p50 trend</th></tr>"
                + "".join(rows) + "</table>"
            )

        gauges = latest.get("gauges")
        budgets = (
            errorbudget_from_gauges(gauges) if isinstance(gauges, dict) else {}
        )
        if budgets:
            rows = []
            for bench, stages in sorted(budgets.items()):
                bar = stacked_budget_svg(stages, width=280, height=14)
                top = ", ".join(
                    f"{escape(stage)} {delta:+.4f}"
                    for stage, delta in stages[:3]
                )
                rows.append(
                    f"<tr><td>{escape(bench)}</td><td>{bar}</td>"
                    f"<td>{top}</td></tr>"
                )
            body.append(
                "<h2>Error budget</h2><table><tr><th>benchmark</th>"
                "<th>stage deltas</th><th>top stages</th></tr>"
                + "".join(rows) + "</table>"
            )

        alerts = latest.get("alerts")
        if isinstance(alerts, dict):
            chips = "".join(
                f"<span class='chip {'firing' if state else 'ok'}'>"
                f"{escape(name)}</span>"
                for name, state in sorted(alerts.items())
            )
            body.append(f"<h2>Alerts</h2><p>{chips}</p>")

        spans = latest.get("active_spans")
        if isinstance(spans, list) and spans:
            items = "".join(
                f"<li><code>{escape(str(info.get('path', '?')))}</code> "
                f"{escape(_fmt_seconds(float(info.get('elapsed', 0.0))))}</li>"
                for info in spans[:12]
                if isinstance(info, dict)
            )
            body.append(f"<h2>Active spans</h2><ul>{items}</ul>")

    style = (
        "body{font-family:system-ui,sans-serif;margin:1.5rem;color:#1a2230;}"
        ".muted{color:#778;}"
        ".cards{display:flex;flex-wrap:wrap;gap:0.8rem;}"
        ".card{border:1px solid #dde;border-radius:8px;padding:0.6rem 1rem;"
        "min-width:10rem;}"
        ".card h2{margin:0 0 0.3rem;font-size:0.8rem;color:#667;"
        "text-transform:uppercase;}"
        ".big{font-size:1.4rem;font-weight:600;margin-bottom:0.2rem;}"
        "table{border-collapse:collapse;margin-top:0.5rem;}"
        "td,th{padding:0.25rem 0.8rem;border-bottom:1px solid #eef;"
        "text-align:left;font-size:0.9rem;}"
        ".bar{background:#eef;border-radius:4px;height:0.6rem;overflow:hidden;}"
        ".fill{background:#4a7;height:100%;}"
        ".chip{display:inline-block;border-radius:999px;padding:0.15rem 0.7rem;"
        "margin-right:0.4rem;font-size:0.85rem;}"
        ".chip.ok{background:#e8f5ec;color:#285;}"
        ".chip.firing{background:#fdeaea;color:#b33;font-weight:600;}"
        "svg.spark polyline{stroke:#4a7;}"
    )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<meta http-equiv='refresh' content='{int(refresh_seconds)}'>"
        f"<title>repro dashboard</title><style>{style}</style></head>"
        f"<body>{''.join(body)}</body></html>"
    )


def fetch_samples(url: str, timeout: float = 5.0) -> List[Dict[str, object]]:
    """The sample ring from a remote endpoint's ``/telemetry.json``."""
    target = url.rstrip("/") + "/telemetry.json"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        payload = json.loads(response.read().decode("utf-8"))
    return payload if isinstance(payload, list) else []


def run_top(
    stream: TextIO,
    url: Optional[str] = None,
    sampler=None,
    interval: float = 1.0,
    iterations: Optional[int] = None,
) -> None:
    """Drive the terminal dashboard loop, writing frames to ``stream``.

    Reads from the in-process ``sampler`` ring when given, otherwise
    polls ``url``.  ``iterations=None`` loops until interrupted
    (Ctrl-C returns cleanly); ``iterations=1`` renders a single frame
    without clearing the screen (``--once``).
    """
    if sampler is None and url is None:
        raise ValueError("run_top needs a sampler or a url")
    done = 0
    clear = iterations != 1
    try:
        while iterations is None or done < iterations:
            if sampler is not None:
                samples = sampler.samples()
            else:
                try:
                    samples = fetch_samples(url)  # type: ignore[arg-type]
                except OSError as exc:
                    stream.write(f"repro top — endpoint unreachable: {exc}\n")
                    stream.flush()
                    samples = None
            if samples is not None:
                stream.write(render_top_text(samples, clear=clear))
                stream.flush()
            done += 1
            if iterations is not None and done >= iterations:
                break
            time.sleep(max(0.1, interval))
    except KeyboardInterrupt:
        stream.write("\n")
        stream.flush()
