"""Observability layer: structured logging, span tracing, metrics, manifests.

The four pillars (see ``docs/observability.md``):

* :mod:`repro.obs.log` — per-module structured loggers on stderr, with
  an optional JSONL sink (``REPRO_LOG`` / ``REPRO_LOG_JSON``);
* :mod:`repro.obs.trace` — nested wall-clock spans with a
  thread/process-safe collector (``REPRO_TRACE=1``);
* :mod:`repro.obs.metrics` — counters / gauges / histograms for the
  pipeline's quantitative telemetry (always on, coarse call sites);
* :mod:`repro.obs.runinfo` — run manifests binding git SHA, host, env
  knobs, seed, span tree and metrics into one archived JSON per run.

Everything is dependency-free (stdlib only) and safe to import from
any layer of the package.
"""

from repro.obs.log import LOG_ENV, LOG_JSON_ENV, configure, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.runinfo import (
    RUN_DIR_ENV,
    build_manifest,
    environment_info,
    provenance_header,
    write_manifest,
)
from repro.obs.trace import (
    TRACE_ENV,
    SpanRecord,
    render_tree,
    span,
    span_tree,
)

__all__ = [
    "LOG_ENV",
    "LOG_JSON_ENV",
    "TRACE_ENV",
    "RUN_DIR_ENV",
    "configure",
    "get_logger",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "SpanRecord",
    "span",
    "span_tree",
    "render_tree",
    "build_manifest",
    "environment_info",
    "provenance_header",
    "write_manifest",
]
