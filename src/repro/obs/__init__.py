"""Observability layer: logging, tracing, metrics, manifests, history.

The pillars (see ``docs/observability.md`` and ``docs/benchmarking.md``):

* :mod:`repro.obs.log` — per-module structured loggers on stderr, with
  an optional JSONL sink (``REPRO_LOG`` / ``REPRO_LOG_JSON``);
* :mod:`repro.obs.trace` — nested wall-clock spans with a
  thread/process-safe collector (``REPRO_TRACE=1``);
* :mod:`repro.obs.metrics` — counters / gauges / histograms for the
  pipeline's quantitative telemetry (always on, coarse call sites);
* :mod:`repro.obs.runinfo` — run manifests binding git SHA, host, env
  knobs, seed, span tree and metrics into one archived JSON per run;
* :mod:`repro.obs.history` — the append-only ``runs/history.jsonl``
  store of benchmark trajectories, keyed by git SHA + timestamp;
* :mod:`repro.obs.compare` — the tolerance-aware regression gate
  (baseline resolution, machine-readable verdicts, CI exit codes);
* :mod:`repro.obs.report` — markdown/HTML trajectory reports with
  per-metric sparklines and a slowest-spans summary;
* :mod:`repro.obs.profile` — ranked hot-spot reports (exclusive vs
  inclusive span time) behind ``python -m repro profile``;
* :mod:`repro.obs.telemetry` — the *live* layer: a background sampler
  appending process/executor/campaign telemetry to a JSONL ring, with
  threshold alerts (``REPRO_TELEMETRY=1``);
* :mod:`repro.obs.openmetrics` — OpenMetrics text exposition of the
  metrics registry plus the ``/metrics`` / ``/telemetry.json`` /
  dashboard HTTP endpoint;
* :mod:`repro.obs.dashboard` — ``python -m repro top``: the terminal
  and self-refreshing HTML views over the telemetry ring.

Everything is dependency-free (stdlib only) and safe to import from
any layer of the package.
"""

from repro.obs.compare import (
    ComparisonResult,
    MetricVerdict,
    Tolerance,
    compare_history,
    compare_metrics,
    resolve_baseline,
)
from repro.obs.history import (
    HISTORY_ENV,
    append_entry,
    build_entry,
    load_history,
)
from repro.obs.log import LOG_ENV, LOG_JSON_ENV, configure, get_logger
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    REGISTRY,
    MetricsRegistry,
    P2Quantile,
    counter,
    gauge,
    histogram,
    quantile_from_summary,
    reset,
)
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    TelemetryServer,
    render,
    validate,
)
from repro.obs.profile import (
    HotSpot,
    hotspots_from_flat_metrics,
    hotspots_from_records,
    hotspots_from_tree,
)
from repro.obs.report import render_html, render_markdown, write_report
from repro.obs.runinfo import (
    RUN_DIR_ENV,
    build_manifest,
    environment_info,
    provenance_header,
    write_manifest,
)
from repro.obs.telemetry import (
    TELEMETRY_ENV,
    TELEMETRY_INTERVAL_ENV,
    TELEMETRY_PORT_ENV,
    AlertEvaluator,
    AlertRule,
    TelemetrySampler,
    build_sample,
)
from repro.obs.trace import (
    TRACE_ENV,
    SpanRecord,
    active_spans,
    render_tree,
    span,
    span_tree,
)

__all__ = [
    "LOG_ENV",
    "LOG_JSON_ENV",
    "TRACE_ENV",
    "RUN_DIR_ENV",
    "HISTORY_ENV",
    "TELEMETRY_ENV",
    "TELEMETRY_PORT_ENV",
    "TELEMETRY_INTERVAL_ENV",
    "configure",
    "get_logger",
    "MetricsRegistry",
    "REGISTRY",
    "BUCKET_BOUNDS",
    "P2Quantile",
    "counter",
    "gauge",
    "histogram",
    "quantile_from_summary",
    "reset",
    "AlertRule",
    "AlertEvaluator",
    "TelemetrySampler",
    "build_sample",
    "CONTENT_TYPE",
    "TelemetryServer",
    "render",
    "validate",
    "active_spans",
    "append_entry",
    "build_entry",
    "load_history",
    "Tolerance",
    "MetricVerdict",
    "ComparisonResult",
    "compare_metrics",
    "compare_history",
    "resolve_baseline",
    "render_markdown",
    "render_html",
    "write_report",
    "SpanRecord",
    "span",
    "span_tree",
    "render_tree",
    "HotSpot",
    "hotspots_from_tree",
    "hotspots_from_records",
    "hotspots_from_flat_metrics",
    "build_manifest",
    "environment_info",
    "provenance_header",
    "write_manifest",
]
