"""Regression gate: tolerance-aware comparison against a baseline run.

Given two flat metric mappings — the current run and a baseline
resolved from history (latest entry for a named SHA) or from the
committed ``benchmarks/baseline.json`` snapshot — classify every
metric and produce a machine-readable verdict:

* **accuracy** metrics (per-benchmark MEI/SAAB errors,
  ``robustness_mei``, cost savings) gate the build: a move beyond
  tolerance in the bad direction is a *regression* and the CLI exits
  non-zero;
* **perf** metrics (span seconds, executor speedups, utilization) are
  advisory by default — hosts jitter — and gate only under
  ``--strict``.

Direction matters: ``error_*``/``mse_*``/``span.*`` regress upward,
``speedup``/``accuracy``/``robustness``/``*_saved`` regress downward.
Tolerances are relative-plus-absolute so tiny denominators don't turn
float dust into failures.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import history as _history

__all__ = [
    "Tolerance",
    "ACCURACY_TOLERANCE",
    "PERF_TOLERANCE",
    "DEFAULT_BASELINE_FILE",
    "classify_metric",
    "higher_is_better",
    "MetricVerdict",
    "ComparisonResult",
    "compare_metrics",
    "resolve_baseline",
    "compare_history",
]

DEFAULT_BASELINE_FILE = "benchmarks/baseline.json"
"""The one tracked benchmark artifact: a committed history entry."""


@dataclass(frozen=True)
class Tolerance:
    """A metric moved only if it changed by more than rel *and* abs."""

    rel: float
    abs: float

    def exceeded(self, baseline: float, current: float) -> bool:
        return abs(current - baseline) > abs(baseline) * self.rel + self.abs


ACCURACY_TOLERANCE = Tolerance(rel=0.10, abs=0.005)
"""Accuracy metrics are deterministic per seed; 10% headroom covers
cross-platform float drift, not algorithmic change."""

PERF_TOLERANCE = Tolerance(rel=0.60, abs=0.05)
"""Wall-clock metrics jitter hard across hosts and CI runners."""

_PERF_TOKENS = (
    "seconds",
    "speedup",
    "utilization",
    "latency",
    "queue_wait",
    "per_second",
)
_HIGHER_BETTER_TOKENS = (
    "speedup",
    "accuracy",
    "robustness",
    "saved",
    "utilization",
    "improvement",
    "snr",
    "per_second",
)


def classify_metric(name: str) -> str:
    """``"perf"`` or ``"accuracy"`` by metric-name convention."""
    if name.startswith("span.") or any(tok in name for tok in _PERF_TOKENS):
        return "perf"
    return "accuracy"


def higher_is_better(name: str) -> bool:
    """Regression direction: errors/MSE/seconds regress up, these down."""
    return any(tok in name for tok in _HIGHER_BETTER_TOKENS)


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's baseline-vs-current outcome."""

    name: str
    kind: str
    status: str
    """``ok`` | ``improved`` | ``regressed`` | ``missing`` | ``new``."""
    baseline: Optional[float] = None
    current: Optional[float] = None

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
        }


@dataclass
class ComparisonResult:
    """The full verdict set plus the gate decision."""

    baseline_label: str
    current_label: str
    verdicts: List[MetricVerdict] = field(default_factory=list)

    def by_status(self, status: str, kind: Optional[str] = None) -> List[MetricVerdict]:
        return [
            v
            for v in self.verdicts
            if v.status == status and (kind is None or v.kind == kind)
        ]

    @property
    def accuracy_regressions(self) -> List[MetricVerdict]:
        return self.by_status("regressed", "accuracy")

    @property
    def perf_regressions(self) -> List[MetricVerdict]:
        return self.by_status("regressed", "perf")

    @property
    def missing(self) -> List[MetricVerdict]:
        return self.by_status("missing")

    def exit_code(self, strict: bool = False) -> int:
        """0 = gate passes.  Accuracy regressions always fail; strict
        mode also fails on perf regressions and vanished metrics."""
        if self.accuracy_regressions:
            return 1
        if strict and (self.perf_regressions or self.missing):
            return 1
        return 0

    def to_dict(self, strict: bool = False) -> Dict[str, object]:
        return {
            "baseline": self.baseline_label,
            "current": self.current_label,
            "strict": strict,
            "exit_code": self.exit_code(strict),
            "counts": {
                status: len(self.by_status(status))
                for status in ("ok", "improved", "regressed", "missing", "new")
            },
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render(self, strict: bool = False, max_ok: int = 0) -> str:
        """Human summary: every non-ok verdict, then the gate line."""
        lines = [
            f"Comparing current [{self.current_label}] "
            f"against baseline [{self.baseline_label}]"
        ]
        interesting = [v for v in self.verdicts if v.status not in ("ok", "new")]
        shown_ok = self.by_status("ok")[:max_ok]
        for verdict in interesting + shown_ok:
            base = "-" if verdict.baseline is None else f"{verdict.baseline:.6g}"
            cur = "-" if verdict.current is None else f"{verdict.current:.6g}"
            lines.append(
                f"  {verdict.status.upper():<9} [{verdict.kind}] "
                f"{verdict.name}: {base} -> {cur}"
            )
        counts = self.to_dict(strict)["counts"]
        lines.append(
            "  "
            + ", ".join(f"{status}={n}" for status, n in counts.items() if n)
        )
        code = self.exit_code(strict)
        lines.append(
            "verdict: PASS" if code == 0 else "verdict: FAIL (regression gate)"
        )
        return "\n".join(lines)


def compare_metrics(
    baseline: Dict[str, float],
    current: Dict[str, float],
    baseline_label: str = "baseline",
    current_label: str = "current",
    accuracy_tolerance: Tolerance = ACCURACY_TOLERANCE,
    perf_tolerance: Tolerance = PERF_TOLERANCE,
) -> ComparisonResult:
    """Classify every metric present on either side."""
    result = ComparisonResult(baseline_label=baseline_label, current_label=current_label)
    for name in sorted(set(baseline) | set(current)):
        kind = classify_metric(name)
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            status = "new"
        elif cur is None:
            status = "missing"
        else:
            tolerance = accuracy_tolerance if kind == "accuracy" else perf_tolerance
            if not tolerance.exceeded(base, cur):
                status = "ok"
            elif (cur > base) == higher_is_better(name):
                status = "improved"
            else:
                status = "regressed"
        result.verdicts.append(
            MetricVerdict(name=name, kind=kind, status=status, baseline=base, current=cur)
        )
    return result


def resolve_baseline(
    history: Sequence[Dict[str, object]],
    baseline_sha: Optional[str] = None,
    baseline_file: "Optional[str | pathlib.Path]" = DEFAULT_BASELINE_FILE,
) -> Optional[Tuple[str, Dict[str, float]]]:
    """Find the baseline metrics: ``(label, metrics)`` or None.

    Resolution order: history entries for the named SHA (averaged over
    repeated runs) > the committed snapshot file > the latest history
    entry from a *different* commit than the newest one (so "compare
    against where this branch started" works with no arguments).
    """
    if baseline_sha:
        entries = _history.entries_for_sha(history, baseline_sha)
        if entries:
            return (f"history:{baseline_sha[:12]}", _history.aggregate_metrics(entries))
    snapshot = _load_baseline_file(baseline_file)
    if snapshot is not None:
        return snapshot
    newest = _history.latest_entry(history)
    if newest is not None:
        newest_sha = newest.get("git_sha")
        older = [e for e in history if e.get("git_sha") != newest_sha]
        if older:
            prior = _history.latest_entry(older)
            sha = str(prior.get("git_sha") or "unknown")
            pool = _history.entries_for_sha(older, sha) if prior.get("git_sha") else [prior]
            return (f"history:{sha[:12]}", _history.aggregate_metrics(pool))
    return None


def _load_baseline_file(
    baseline_file: "Optional[str | pathlib.Path]",
) -> Optional[Tuple[str, Dict[str, float]]]:
    if baseline_file is None:
        return None
    path = pathlib.Path(baseline_file)
    if not path.exists():
        return None
    try:
        entry = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    metrics = entry.get("metrics") if isinstance(entry, dict) else None
    if not isinstance(metrics, dict):
        return None
    sha = str(entry.get("git_sha") or "unknown")
    return (
        f"snapshot:{path.name}@{sha[:12]}",
        {
            k: float(v)
            for k, v in metrics.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        },
    )


def compare_history(
    history_path: "Optional[str | pathlib.Path]" = None,
    baseline_sha: Optional[str] = None,
    baseline_file: "Optional[str | pathlib.Path]" = DEFAULT_BASELINE_FILE,
    accuracy_tolerance: Tolerance = ACCURACY_TOLERANCE,
    perf_tolerance: Tolerance = PERF_TOLERANCE,
    kind: Optional[str] = None,
) -> Optional[ComparisonResult]:
    """End-to-end gate: latest history entry vs resolved baseline.

    The *current* side averages every history entry sharing the newest
    entry's git SHA (repeated-run smoothing).  Returns None when either
    side cannot be resolved — the CLI reports that as "nothing to
    compare" rather than a failure.

    ``kind`` restricts both sides to entries of one history kind (e.g.
    ``"errorbudget"``), so attribution drift is gated against the
    errorbudget baseline instead of being averaged with bench entries
    of the same commit.
    """
    history = _history.load_history(history_path)
    # Entries of a kind no producer registered would otherwise be
    # skipped without a trace (a typo'd kind, or a new subsystem whose
    # kind was never added to KNOWN_KINDS).  Warn with a count so they
    # cannot be dropped unnoticed.  An explicitly requested --kind is
    # honoured even when unregistered.
    recognized = _history.KNOWN_KINDS | ({kind} if kind is not None else set())
    unknown = [e for e in history if _history.entry_kind(e) not in recognized]
    if unknown:
        unknown_kinds = sorted({_history.entry_kind(e) for e in unknown})
        warnings.warn(
            f"compare is ignoring {len(unknown)} history "
            f"entr{'y' if len(unknown) == 1 else 'ies'} of unknown kind "
            f"{unknown_kinds} (known kinds: {sorted(_history.KNOWN_KINDS)}); "
            "register new kinds in repro.obs.history.KNOWN_KINDS or select "
            "one explicitly with --kind",
            RuntimeWarning,
            stacklevel=2,
        )
        history = [e for e in history if _history.entry_kind(e) in recognized]
    if kind is not None:
        history = _history.entries_of_kind(history, kind)
    newest = _history.latest_entry(history)
    if newest is None:
        return None
    current_sha = newest.get("git_sha")
    pool = (
        _history.entries_for_sha(history, str(current_sha)) if current_sha else [newest]
    )
    current = _history.aggregate_metrics(pool)
    current_label = f"history:{str(current_sha or 'unknown')[:12]} (n={len(pool)})"
    resolved = resolve_baseline(history, baseline_sha, baseline_file)
    if resolved is None:
        return None
    label, baseline = resolved
    return compare_metrics(
        baseline,
        current,
        baseline_label=label,
        current_label=current_label,
        accuracy_tolerance=accuracy_tolerance,
        perf_tolerance=perf_tolerance,
    )
