"""Run history: an append-only JSONL store of benchmark trajectories.

Every ``python -m repro bench`` run appends one *entry* — a flat
``metric name -> float`` mapping stamped with full provenance (git
SHA, ``repro.__version__``, host, seed, scale) — to
``runs/history.jsonl``.  The store is the substrate of the regression
gate (:mod:`repro.obs.compare`) and the trajectory report
(:mod:`repro.obs.report`): because entries are keyed by commit and
timestamp, "did this PR slow down training or hurt MEI accuracy" is a
query, not an archaeology project.

Metric namespace (flat, dotted):

* ``table1.<bench>.<column>`` — accuracy rows from the Table 1 driver
  (``error_mei``, ``robustness_mei``, ``area_saved_measured``, ...);
* ``span.<path>`` — wall seconds of one span-tree path
  (``span.table1/row:fft/train``), harvested from traced runs;
* ``<stem>.<path>`` — numeric leaves of archived benchmark payloads
  (``benchmarks/out/*.json``, ``BENCH_*.json``), e.g.
  ``bench_parallel.seed_repeat_sweep.speedup``.

Everything here is stdlib-only and import-safe from any layer.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.config import knobs
from repro.obs import trace as _trace
from repro.obs.runinfo import provenance_header

__all__ = [
    "HISTORY_ENV",
    "DEFAULT_HISTORY_PATH",
    "KNOWN_KINDS",
    "history_path",
    "append_entry",
    "load_history",
    "entries_for_sha",
    "entries_of_kind",
    "entry_kind",
    "latest_entry",
    "aggregate_metrics",
    "build_entry",
    "flatten_payload",
    "metrics_from_spans",
    "metrics_from_manifest",
    "ingest_out_dir",
]

HISTORY_ENV = "REPRO_HISTORY"
"""Environment variable overriding the default history store path."""

DEFAULT_HISTORY_PATH = "runs/history.jsonl"


def history_path(path: "Optional[str | pathlib.Path]" = None) -> pathlib.Path:
    """Resolve the history store: explicit > ``REPRO_HISTORY`` > default."""
    if path is None:
        path = knobs.get_path(HISTORY_ENV) or DEFAULT_HISTORY_PATH
    return pathlib.Path(path)


def append_entry(
    entry: Dict[str, object], path: "Optional[str | pathlib.Path]" = None
) -> pathlib.Path:
    """Append one entry as a single JSON line; create parents as needed."""
    target = history_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
    return target


def load_history(path: "Optional[str | pathlib.Path]" = None) -> List[Dict[str, object]]:
    """All entries in append order; corrupt/partial lines are skipped.

    A torn final line (e.g. a run killed mid-append) must not take the
    whole trajectory down with it.
    """
    target = history_path(path)
    if not target.exists():
        return []
    entries: List[Dict[str, object]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def entries_for_sha(
    history: Sequence[Dict[str, object]], sha: str
) -> List[Dict[str, object]]:
    """Entries whose ``git_sha`` starts with ``sha`` (short SHAs work)."""
    return [
        e
        for e in history
        if isinstance(e.get("git_sha"), str) and str(e["git_sha"]).startswith(sha)
    ]


KNOWN_KINDS = frozenset({"bench", "errorbudget", "serve"})
"""Every history-entry ``kind`` a producer in this repo writes.

The compare gate warns about (and excludes) entries of any other
kind — a new producer must register its kind here so its rows cannot
be dropped unnoticed (see :func:`repro.obs.compare.compare_history`).
"""


def entry_kind(entry: Dict[str, object]) -> str:
    """The effective kind of one entry.

    Seed-era entries predate the ``kind`` field; they count as
    ``bench`` so existing baselines keep resolving.
    """
    return str(entry.get("kind") or "bench")


def entries_of_kind(
    history: Sequence[Dict[str, object]], kind: str
) -> List[Dict[str, object]]:
    """Entries of one kind (``bench``, ``errorbudget``, ...)."""
    return [e for e in history if entry_kind(e) == kind]


def latest_entry(
    history: Sequence[Dict[str, object]], sha: Optional[str] = None
) -> Optional[Dict[str, object]]:
    """Most recent entry, optionally restricted to one commit."""
    pool = entries_for_sha(history, sha) if sha else list(history)
    if not pool:
        return None
    return max(pool, key=lambda e: (str(e.get("created", "")), pool.index(e)))


def aggregate_metrics(
    entries: Sequence[Dict[str, object]],
) -> Dict[str, float]:
    """Mean of every metric across repeated runs of the same commit.

    Averaging tames host jitter in the perf metrics; deterministic
    accuracy metrics are unchanged by it.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for entry in entries:
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            continue
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            sums[name] = sums.get(name, 0.0) + float(value)
            counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def build_entry(
    metrics: Dict[str, float],
    kind: str = "bench",
    seed: Optional[int] = None,
    scale: Optional[str] = None,
    **extra: object,
) -> Dict[str, object]:
    """Assemble one history entry with full provenance.

    ``git_sha``/``created``/``version`` are hoisted to the top level so
    baseline resolution never has to dig into the provenance block.
    """
    provenance = provenance_header(**extra)
    return {
        "kind": kind,
        "created": provenance.get("created"),
        "git_sha": provenance.get("git_sha"),
        "version": provenance.get("version"),
        "seed": seed,
        "scale": scale,
        "provenance": provenance,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }


def flatten_payload(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten a nested JSON payload to dotted-name numeric leaves.

    Dicts recurse by key; lists recurse by index (or by each element's
    ``name`` field when present, matching the row exports); booleans
    and strings are dropped; a ``provenance`` block is skipped — it is
    metadata, not a metric.
    """
    out: Dict[str, float] = {}

    def _walk(node: object, path: str) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            if path:
                out[path] = float(node)
            return
        if isinstance(node, dict):
            for key, value in node.items():
                if key == "provenance":
                    continue
                _walk(value, f"{path}.{key}" if path else str(key))
            return
        if isinstance(node, (list, tuple)):
            for index, value in enumerate(node):
                label = (
                    str(value["name"])
                    if isinstance(value, dict) and "name" in value
                    else str(index)
                )
                _walk(value, f"{path}.{label}" if path else label)

    _walk(payload, prefix)
    return out


def metrics_from_spans(
    records: Optional[Sequence[_trace.SpanRecord]] = None,
) -> Dict[str, float]:
    """``span.<path> -> total wall seconds`` from collected span records.

    Sibling spans sharing a path accumulate, exactly like the manifest
    span tree, so a 300-epoch ``train`` node is one metric.
    """
    if records is None:
        records = _trace.get_records()
    totals: Dict[str, float] = {}
    for record in records:
        key = f"span.{record.path}"
        totals[key] = totals.get(key, 0.0) + float(record.duration)
    return {name: round(value, 6) for name, value in totals.items()}


def metrics_from_manifest(manifest: Dict[str, object]) -> Dict[str, float]:
    """Harvest a run manifest's span tree into ``span.*`` metrics."""
    out: Dict[str, float] = {}

    def _walk(node: Dict[str, object]) -> None:
        if node.get("path"):
            out[f"span.{node['path']}"] = float(node.get("total_seconds", 0.0))
        for child in node.get("children", []) or []:
            _walk(child)

    tree = manifest.get("span_tree")
    if isinstance(tree, dict):
        _walk(tree)
    return out


def ingest_out_dir(
    out_dir: "str | pathlib.Path" = "benchmarks/out",
) -> Dict[str, float]:
    """Flatten every archived JSON payload under ``benchmarks/out/``.

    ``BENCH_parallel.json`` becomes ``bench_parallel.*`` (stems are
    lower-cased) next to the per-bench row exports; unreadable files
    are skipped so a half-written archive cannot poison an entry.
    """
    out_dir = pathlib.Path(out_dir)
    metrics: Dict[str, float] = {}
    if not out_dir.exists():
        return metrics
    for path in sorted(out_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        metrics.update(flatten_payload(payload, prefix=path.stem.lower()))
    return metrics
