"""The RPR rule implementations: small AST visitors over one module.

Each rule is a :class:`Rule` with a stable code, a one-line summary
(rendered in ``--list-rules`` and the docs) and a ``check`` hook that
yields :class:`~repro.lintrules.engine.Finding`-shaped tuples.  Name
resolution goes through :class:`ImportMap`, which rewrites local
aliases (``import numpy as np``, ``from numpy.random import
default_rng as rng_factory``) into fully qualified dotted names, so
the rules are robust to import spelling.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["ALL_RULES", "HOT_PATH_PACKAGES", "ImportMap", "RawFinding", "Rule", "rule_catalogue"]

RawFinding = Tuple[int, int, str]
"""(line, column, message) produced by a rule before engine wrapping."""


@dataclass(frozen=True)
class Rule:
    """One named invariant.

    ``check(tree, import_map, is_library)`` yields raw findings; the
    engine attaches path/rule metadata and applies suppressions.
    ``applies`` optionally gates the rule on the file path (e.g.
    RPR007 only checks the hot-path packages); None = every file.
    """

    code: str
    summary: str
    rationale: str
    check: Callable[[ast.AST, "ImportMap", bool], Iterator[RawFinding]]
    applies: Optional[Callable[[pathlib.Path], bool]] = None


class ImportMap:
    """Resolves local names to fully qualified dotted module paths."""

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _canonical(qualified: Optional[str]) -> Optional[str]:
    """Collapse the ``np``/``numpy`` split: report numpy paths uniformly."""
    if qualified is None:
        return None
    if qualified == "np" or qualified.startswith("np."):
        return "numpy" + qualified[2:]
    return qualified


# ---------------------------------------------------------------------------
# RPR001 — unseeded generator construction
# ---------------------------------------------------------------------------

def _check_rpr001(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical(imports.qualify(node.func))
        if name == "numpy.random.default_rng" and not node.args and not node.keywords:
            yield (
                node.lineno,
                node.col_offset,
                "unseeded np.random.default_rng() breaks replayability; thread an "
                "explicit rng/seed or use repro.parallel.seeding.fresh_rng(), which "
                "logs the seed it draws",
            )
        elif name == "numpy.random.Generator":
            yield (
                node.lineno,
                node.col_offset,
                "direct np.random.Generator() construction bypasses the seeding "
                "discipline; build generators with default_rng(seed), ensure_rng() "
                "or fresh_rng()",
            )


# ---------------------------------------------------------------------------
# RPR002 — legacy global RNG state
# ---------------------------------------------------------------------------

_MODERN_NUMPY_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _check_rpr002(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", None)
            for alias in node.names:
                target = alias.name if isinstance(node, ast.Import) else f"{module}.{alias.name}"
                if target == "random" or target.startswith("random."):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "stdlib `random` carries hidden global state; use a threaded "
                        "numpy Generator instead",
                    )
                elif (
                    isinstance(node, ast.ImportFrom)
                    and module in ("numpy.random", "np.random")
                    and alias.name not in _MODERN_NUMPY_RANDOM
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"legacy numpy.random.{alias.name} mutates global RNG state; "
                        "use Generator methods on a threaded rng",
                    )
        elif isinstance(node, ast.Attribute):
            name = _canonical(imports.qualify(node))
            if (
                name is not None
                and name.startswith("numpy.random.")
                and name.count(".") == 2
                and name.rsplit(".", 1)[1] not in _MODERN_NUMPY_RANDOM
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"legacy global-state API {name} is forbidden; draw from a "
                    "threaded np.random.Generator",
                )


# ---------------------------------------------------------------------------
# RPR003 — environment access outside the knob registry
# ---------------------------------------------------------------------------

def _check_rpr003(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    message = (
        "read configuration through the repro.config.knobs registry, not "
        "os.environ/os.getenv — undeclared knobs must fail loudly and appear "
        "in the docs table"
    )
    reported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            name = _canonical(imports.qualify(node))
            if name in ("os.environ", "os.getenv", "os.putenv", "os.environb"):
                key = (node.lineno, node.col_offset)
                if key not in reported:
                    reported.add(key)
                    yield (node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# RPR004 — stdout writes in library modules
# ---------------------------------------------------------------------------

def _check_rpr004(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    if not is_library:
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            # print(..., file=sys.stderr) is a legitimate diagnostic
            # escape hatch; only bare/stdout prints are findings.
            stream = next((kw.value for kw in node.keywords if kw.arg == "file"), None)
            stream_name = _canonical(imports.qualify(stream)) if stream is not None else None
            if stream is None or stream_name == "sys.stdout":
                yield (
                    node.lineno,
                    node.col_offset,
                    "print() in library code corrupts the stdout table contract; "
                    "emit diagnostics via repro.obs.log (stdout belongs to __main__)",
                )
        elif isinstance(node, ast.Attribute):
            name = _canonical(imports.qualify(node))
            if name == "sys.stdout":
                yield (
                    node.lineno,
                    node.col_offset,
                    "sys.stdout is reserved for result tables printed by __main__; "
                    "route library output through repro.obs.log or return strings",
                )


# ---------------------------------------------------------------------------
# RPR005 — hand-rolled rng normalization
# ---------------------------------------------------------------------------

def _is_generator_isinstance(call: ast.AST, imports: ImportMap) -> bool:
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "isinstance"
        and len(call.args) == 2
        and _canonical(imports.qualify(call.args[1])) == "numpy.random.Generator"
    )


def _check_rpr005(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    message = (
        "hand-rolled rng normalization duplicates repro.parallel.seeding."
        "ensure_rng(); call the shared helper so None-handling stays logged "
        "and consistent"
    )
    for node in ast.walk(tree):
        # if not isinstance(x, np.random.Generator): x = default_rng(x)
        if isinstance(node, ast.If):
            test = node.test
            if (
                isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)
                and _is_generator_isinstance(test.operand, imports)
            ):
                yield (node.lineno, node.col_offset, message)
        # x = y if isinstance(y, np.random.Generator) else default_rng(y)
        elif isinstance(node, ast.IfExp) and _is_generator_isinstance(node.test, imports):
            yield (node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# RPR007 — raw float dtype literals in hot-path packages
# ---------------------------------------------------------------------------

HOT_PATH_PACKAGES = frozenset({"nn", "xbar", "quant", "analog"})
"""Subpackages whose array allocations must honour ``REPRO_DTYPE``
via ``repro.config.dtype.astype`` (the deterministic data path)."""

_FLOAT_DTYPE_STRINGS = frozenset({"float", "float64", "float32"})


def _is_hot_path(path: pathlib.Path) -> bool:
    parts = path.parts
    for idx, part in enumerate(parts):
        if part == "repro" and idx + 1 < len(parts) and parts[idx + 1] in HOT_PATH_PACKAGES:
            return True
    # bare fixture paths like "xbar/foo.py"
    return bool(parts) and parts[0] in HOT_PATH_PACKAGES


def _is_float_dtype_literal(node: ast.AST, imports: ImportMap) -> bool:
    if isinstance(node, ast.Constant) and node.value in _FLOAT_DTYPE_STRINGS:
        return True
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    qualified = _canonical(imports.qualify(node))
    return qualified in ("numpy.float64", "numpy.float32")


def _check_rpr007(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    message = (
        "raw float dtype literal bypasses REPRO_DTYPE; allocate through "
        "repro.config.dtype.astype() so the float32 data path stays honest"
    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg == "dtype" and _is_float_dtype_literal(keyword.value, imports):
                # anchor at the call so one end-of-line suppression
                # covers a multi-line call too
                yield (node.lineno, node.col_offset, message)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and len(node.args) == 1
            and _is_float_dtype_literal(node.args[0], imports)
        ):
            yield (node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# RPR009 (per-file half) — metric objects constructed outside the registry
# ---------------------------------------------------------------------------

_METRIC_CLASSES = frozenset(
    {
        "repro.obs.metrics.Counter",
        "repro.obs.metrics.Gauge",
        "repro.obs.metrics.Histogram",
        "repro.obs.metrics.MetricsRegistry",
    }
)


def _check_rpr009(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical(imports.qualify(node.func))
        if name in _METRIC_CLASSES:
            short = name.rsplit(".", 1)[1]
            yield (
                node.lineno,
                node.col_offset,
                f"direct {short}() construction bypasses the process-wide "
                "registry (snapshot/merge, OpenMetrics exposition); use the "
                "counter()/gauge()/histogram() factories in repro.obs.metrics",
            )


def _not_metrics_module(path: pathlib.Path) -> bool:
    return path.name != "metrics.py" or "obs" not in path.parts


# ---------------------------------------------------------------------------
# RPR010 — executors / SHM arenas used without context management
# ---------------------------------------------------------------------------

_MANAGED_RESOURCES = {
    "repro.parallel.shm.ShmSession": "ShmSession",
    "concurrent.futures.ThreadPoolExecutor": "ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor": "ProcessPoolExecutor",
    "multiprocessing.shared_memory.SharedMemory": "SharedMemory",
}


def _managed_context_calls(tree: ast.AST) -> frozenset:
    """Call nodes that are `with` items or fed to enter_context()."""
    managed = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                managed.add(id(item.context_expr))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "enter_context"
            and node.args
        ):
            managed.add(id(node.args[0]))
    return frozenset(managed)


def _check_rpr010(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    managed = _managed_context_calls(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or id(node) in managed:
            continue
        name = _canonical(imports.qualify(node.func))
        short = _MANAGED_RESOURCES.get(name or "")
        if short is not None:
            yield (
                node.lineno,
                node.col_offset,
                f"{short}(...) outside a `with` block leaks segments/threads "
                "on the error path; context-manage it (or enter_context on an "
                "ExitStack) so teardown is exception-safe",
            )


# ---------------------------------------------------------------------------
# RPR011 — spans opened without `with`
# ---------------------------------------------------------------------------


def _check_rpr011(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    managed = _managed_context_calls(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or id(node) in managed:
            continue
        name = _canonical(imports.qualify(node.func))
        if name == "repro.obs.trace.span":
            yield (
                node.lineno,
                node.col_offset,
                "span(...) called without `with` never closes: the timing "
                "never reaches the profile report and the span stack "
                "corrupts; use `with span(...):`",
            )


def _not_trace_module(path: pathlib.Path) -> bool:
    return path.name != "trace.py" or "obs" not in path.parts


ALL_RULES: Tuple[Rule, ...] = (
    Rule(
        code="RPR001",
        summary="no unseeded np.random.default_rng()/Generator() in library code",
        rationale=(
            "Every accuracy number rests on Monte-Carlo draws; an unseeded "
            "generator makes the run unreplayable and silently voids the "
            "serial/parallel equivalence guarantee."
        ),
        check=_check_rpr001,
    ),
    Rule(
        code="RPR002",
        summary="no legacy global RNG state (np.random.* module functions, stdlib random)",
        rationale=(
            "Global RNG state is shared across threads and call sites, so one "
            "stray draw reorders every stream after it."
        ),
        check=_check_rpr002,
    ),
    Rule(
        code="RPR003",
        summary="environment knobs are read via repro.config.knobs, never os.environ",
        rationale=(
            "A central registry keeps the knob set discoverable, typed, "
            "documented, and snapshot-complete in run manifests."
        ),
        check=_check_rpr003,
    ),
    Rule(
        code="RPR004",
        summary="no print()/sys.stdout in library modules",
        rationale=(
            "stdout is the machine-readable artifact channel (tables); "
            "diagnostics belong on stderr via repro.obs.log."
        ),
        check=_check_rpr004,
    ),
    Rule(
        code="RPR005",
        summary=(
            "rng arguments are normalized with seeding.ensure_rng(), "
            "not ad-hoc isinstance blocks"
        ),
        rationale=(
            "Copy-pasted normalization blocks drift (some logged, some not); "
            "one helper keeps None-handling replayable everywhere."
        ),
        check=_check_rpr005,
    ),
    Rule(
        code="RPR007",
        summary=(
            "hot-path packages (nn/xbar/quant/analog) allocate through "
            "repro.config.dtype.astype, not raw float dtype literals"
        ),
        rationale=(
            "REPRO_DTYPE=float32 halves memory traffic only if every "
            "allocation honours it; one stray dtype=float silently promotes "
            "the whole downstream pipeline back to float64."
        ),
        check=_check_rpr007,
        applies=_is_hot_path,
    ),
    Rule(
        code="RPR009",
        summary="metric objects come from the counter()/gauge()/histogram() factories",
        rationale=(
            "Metrics constructed outside the registry are invisible to "
            "snapshot/diff/merge and the OpenMetrics endpoint, so their "
            "numbers silently vanish from worker processes and dashboards."
        ),
        check=_check_rpr009,
        applies=_not_metrics_module,
    ),
    Rule(
        code="RPR010",
        summary="executors and SHM arenas are context-managed",
        rationale=(
            "A ShmSession or pool torn down by hand leaks POSIX segments and "
            "worker processes when the sweep raises; `with` makes teardown "
            "exception-safe."
        ),
        check=_check_rpr010,
    ),
    Rule(
        code="RPR011",
        summary="trace spans are opened with `with span(...)`",
        rationale=(
            "An unclosed span corrupts the span stack and drops its timing "
            "from the profile report, which the CI profile gate then flags "
            "as lost coverage."
        ),
        check=_check_rpr011,
        applies=_not_trace_module,
    ),
)


def rule_catalogue(rules: Optional[Tuple] = None) -> str:
    """Human-readable rule listing for ``--list-rules``.

    Accepts any sequence of objects carrying ``code``/``summary``/
    ``rationale`` (per-file Rules and ProgramRules alike); defaults to
    the per-file set.
    """
    listed = list(ALL_RULES) if rules is None else list(rules)
    listed.sort(key=lambda rule: rule.code)
    lines = []
    for rule in listed:
        lines.append(f"{rule.code}  {rule.summary}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
