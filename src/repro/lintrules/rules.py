"""The RPR rule implementations: small AST visitors over one module.

Each rule is a :class:`Rule` with a stable code, a one-line summary
(rendered in ``--list-rules`` and the docs) and a ``check`` hook that
yields :class:`~repro.lintrules.engine.Finding`-shaped tuples.  Name
resolution goes through :class:`ImportMap`, which rewrites local
aliases (``import numpy as np``, ``from numpy.random import
default_rng as rng_factory``) into fully qualified dotted names, so
the rules are robust to import spelling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["ALL_RULES", "ImportMap", "RawFinding", "Rule", "rule_catalogue"]

RawFinding = Tuple[int, int, str]
"""(line, column, message) produced by a rule before engine wrapping."""


@dataclass(frozen=True)
class Rule:
    """One named invariant.

    ``check(tree, import_map, is_library)`` yields raw findings; the
    engine attaches path/rule metadata and applies suppressions.
    """

    code: str
    summary: str
    rationale: str
    check: Callable[[ast.AST, "ImportMap", bool], Iterator[RawFinding]]


class ImportMap:
    """Resolves local names to fully qualified dotted module paths."""

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _canonical(qualified: Optional[str]) -> Optional[str]:
    """Collapse the ``np``/``numpy`` split: report numpy paths uniformly."""
    if qualified is None:
        return None
    if qualified == "np" or qualified.startswith("np."):
        return "numpy" + qualified[2:]
    return qualified


# ---------------------------------------------------------------------------
# RPR001 — unseeded generator construction
# ---------------------------------------------------------------------------

def _check_rpr001(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical(imports.qualify(node.func))
        if name == "numpy.random.default_rng" and not node.args and not node.keywords:
            yield (
                node.lineno,
                node.col_offset,
                "unseeded np.random.default_rng() breaks replayability; thread an "
                "explicit rng/seed or use repro.parallel.seeding.fresh_rng(), which "
                "logs the seed it draws",
            )
        elif name == "numpy.random.Generator":
            yield (
                node.lineno,
                node.col_offset,
                "direct np.random.Generator() construction bypasses the seeding "
                "discipline; build generators with default_rng(seed), ensure_rng() "
                "or fresh_rng()",
            )


# ---------------------------------------------------------------------------
# RPR002 — legacy global RNG state
# ---------------------------------------------------------------------------

_MODERN_NUMPY_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _check_rpr002(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", None)
            for alias in node.names:
                target = alias.name if isinstance(node, ast.Import) else f"{module}.{alias.name}"
                if target == "random" or target.startswith("random."):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "stdlib `random` carries hidden global state; use a threaded "
                        "numpy Generator instead",
                    )
                elif (
                    isinstance(node, ast.ImportFrom)
                    and module in ("numpy.random", "np.random")
                    and alias.name not in _MODERN_NUMPY_RANDOM
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"legacy numpy.random.{alias.name} mutates global RNG state; "
                        "use Generator methods on a threaded rng",
                    )
        elif isinstance(node, ast.Attribute):
            name = _canonical(imports.qualify(node))
            if (
                name is not None
                and name.startswith("numpy.random.")
                and name.count(".") == 2
                and name.rsplit(".", 1)[1] not in _MODERN_NUMPY_RANDOM
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"legacy global-state API {name} is forbidden; draw from a "
                    "threaded np.random.Generator",
                )


# ---------------------------------------------------------------------------
# RPR003 — environment access outside the knob registry
# ---------------------------------------------------------------------------

def _check_rpr003(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    message = (
        "read configuration through the repro.config.knobs registry, not "
        "os.environ/os.getenv — undeclared knobs must fail loudly and appear "
        "in the docs table"
    )
    reported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            name = _canonical(imports.qualify(node))
            if name in ("os.environ", "os.getenv", "os.putenv", "os.environb"):
                key = (node.lineno, node.col_offset)
                if key not in reported:
                    reported.add(key)
                    yield (node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# RPR004 — stdout writes in library modules
# ---------------------------------------------------------------------------

def _check_rpr004(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    if not is_library:
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            # print(..., file=sys.stderr) is a legitimate diagnostic
            # escape hatch; only bare/stdout prints are findings.
            stream = next((kw.value for kw in node.keywords if kw.arg == "file"), None)
            stream_name = _canonical(imports.qualify(stream)) if stream is not None else None
            if stream is None or stream_name == "sys.stdout":
                yield (
                    node.lineno,
                    node.col_offset,
                    "print() in library code corrupts the stdout table contract; "
                    "emit diagnostics via repro.obs.log (stdout belongs to __main__)",
                )
        elif isinstance(node, ast.Attribute):
            name = _canonical(imports.qualify(node))
            if name == "sys.stdout":
                yield (
                    node.lineno,
                    node.col_offset,
                    "sys.stdout is reserved for result tables printed by __main__; "
                    "route library output through repro.obs.log or return strings",
                )


# ---------------------------------------------------------------------------
# RPR005 — hand-rolled rng normalization
# ---------------------------------------------------------------------------

def _is_generator_isinstance(call: ast.AST, imports: ImportMap) -> bool:
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "isinstance"
        and len(call.args) == 2
        and _canonical(imports.qualify(call.args[1])) == "numpy.random.Generator"
    )


def _check_rpr005(tree: ast.AST, imports: ImportMap, is_library: bool) -> Iterator[RawFinding]:
    message = (
        "hand-rolled rng normalization duplicates repro.parallel.seeding."
        "ensure_rng(); call the shared helper so None-handling stays logged "
        "and consistent"
    )
    for node in ast.walk(tree):
        # if not isinstance(x, np.random.Generator): x = default_rng(x)
        if isinstance(node, ast.If):
            test = node.test
            if (
                isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)
                and _is_generator_isinstance(test.operand, imports)
            ):
                yield (node.lineno, node.col_offset, message)
        # x = y if isinstance(y, np.random.Generator) else default_rng(y)
        elif isinstance(node, ast.IfExp) and _is_generator_isinstance(node.test, imports):
            yield (node.lineno, node.col_offset, message)


ALL_RULES: Tuple[Rule, ...] = (
    Rule(
        code="RPR001",
        summary="no unseeded np.random.default_rng()/Generator() in library code",
        rationale=(
            "Every accuracy number rests on Monte-Carlo draws; an unseeded "
            "generator makes the run unreplayable and silently voids the "
            "serial/parallel equivalence guarantee."
        ),
        check=_check_rpr001,
    ),
    Rule(
        code="RPR002",
        summary="no legacy global RNG state (np.random.* module functions, stdlib random)",
        rationale=(
            "Global RNG state is shared across threads and call sites, so one "
            "stray draw reorders every stream after it."
        ),
        check=_check_rpr002,
    ),
    Rule(
        code="RPR003",
        summary="environment knobs are read via repro.config.knobs, never os.environ",
        rationale=(
            "A central registry keeps the knob set discoverable, typed, "
            "documented, and snapshot-complete in run manifests."
        ),
        check=_check_rpr003,
    ),
    Rule(
        code="RPR004",
        summary="no print()/sys.stdout in library modules",
        rationale=(
            "stdout is the machine-readable artifact channel (tables); "
            "diagnostics belong on stderr via repro.obs.log."
        ),
        check=_check_rpr004,
    ),
    Rule(
        code="RPR005",
        summary=(
            "rng arguments are normalized with seeding.ensure_rng(), "
            "not ad-hoc isinstance blocks"
        ),
        rationale=(
            "Copy-pasted normalization blocks drift (some logged, some not); "
            "one helper keeps None-handling replayable everywhere."
        ),
        check=_check_rpr005,
    ),
)


def rule_catalogue() -> str:
    """Human-readable rule listing for ``--list-rules``."""
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.summary}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
