"""Whole-program rules: invariants that only exist across files.

The per-file rules in :mod:`repro.lintrules.rules` see one AST at a
time.  The rules here run once per lint invocation over a
:class:`ProgramContext` holding every parsed module plus the import
graph, and check cross-module properties:

* **RPR006** — the layering contract and import-cycle freedom of the
  package DAG (see :mod:`repro.lintrules.graph`);
* **RPR008** — the knob lifecycle: every registered ``REPRO_*`` knob
  is read somewhere, no knob is read at import time (env must be
  consultable after process start, e.g. in tests), every knob appears
  in the docs table;
* **RPR009** (program half) — metric family names never collide
  across counter/gauge/histogram and stay OpenMetrics-safe.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.lintrules.graph import (
    REPRO_CONTRACT,
    ImportGraph,
    LayeringContract,
    build_graph,
    find_cycles,
    module_name_for,
)
from repro.lintrules.rules import ImportMap

__all__ = [
    "ALL_PROGRAM_RULES",
    "ModuleFile",
    "ProgramContext",
    "ProgramRule",
    "build_context",
]

RawProgramFinding = Tuple[pathlib.Path, int, int, str]
"""(path, line, column, message) — program findings carry their file."""


@dataclass(frozen=True)
class ModuleFile:
    """One parsed module inside the program under analysis."""

    path: pathlib.Path
    module: Optional[str]
    tree: ast.AST
    imports: ImportMap


@dataclass
class ProgramContext:
    """Everything a program rule may look at."""

    files: List[ModuleFile]
    graph: ImportGraph
    contract: LayeringContract = REPRO_CONTRACT
    docs_dir: Optional[pathlib.Path] = None
    constants: Dict[str, Dict[str, str]] = field(default_factory=dict)
    """module -> {CONSTANT: "REPRO_..."} string constants assigned at
    module scope (used to resolve ``knobs.get_bool(TRACE_ENV)``)."""


@dataclass(frozen=True)
class ProgramRule:
    """One cross-module invariant."""

    code: str
    summary: str
    rationale: str
    check: Callable[[ProgramContext], Iterator[RawProgramFinding]]


def _module_constants(tree: ast.AST) -> Dict[str, str]:
    consts: Dict[str, str] = {}
    body = tree.body if isinstance(tree, ast.Module) else []
    for node in body:
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if not isinstance(value, ast.Constant) or not isinstance(value.value, str):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = value.value
    return consts


def _locate_docs(package_dir: pathlib.Path) -> Optional[pathlib.Path]:
    """Find the repository ``docs/`` directory by walking up."""
    current = package_dir.resolve()
    for _ in range(6):
        candidate = current / "docs"
        if (candidate / "observability.md").exists():
            return candidate
        if current.parent == current:
            break
        current = current.parent
    return None


def build_context(
    files: List[Tuple[pathlib.Path, str, ast.AST]],
    contract: LayeringContract = REPRO_CONTRACT,
) -> ProgramContext:
    """Assemble the program view from parsed (path, source, tree) files."""
    modules: List[ModuleFile] = []
    constants: Dict[str, Dict[str, str]] = {}
    for path, _, tree in files:
        name = module_name_for(path)
        modules.append(ModuleFile(path=path, module=name, tree=tree, imports=ImportMap(tree)))
        if name is not None:
            constants[name] = _module_constants(tree)
    graph = build_graph([(m.path, m.tree) for m in modules])
    package_dirs = [m.path.parent for m in modules if m.module == graph.root]
    docs_dir = _locate_docs(package_dirs[0]) if package_dirs else None
    if docs_dir is None and modules:
        docs_dir = _locate_docs(modules[0].path.parent)
    return ProgramContext(
        files=modules, graph=graph, contract=contract, docs_dir=docs_dir, constants=constants
    )


# ---------------------------------------------------------------------------
# RPR006 — layering contract + cycle freedom
# ---------------------------------------------------------------------------


def _check_rpr006(ctx: ProgramContext) -> Iterator[RawProgramFinding]:
    paths = dict(ctx.graph.modules)
    seen: Set[Tuple[str, int, Optional[str]]] = set()
    for edge in ctx.graph.top_level_edges():
        reason = ctx.contract.violation(edge.src, edge.dst)
        if reason is None:
            continue
        path = paths.get(edge.src)
        if path is None:
            continue
        # one import statement reaches both `pkg` and `pkg.sub`; report
        # the offending layer once per line
        key = (edge.src, edge.line, ctx.contract.layer_of(edge.dst))
        if key in seen:
            continue
        seen.add(key)
        yield (
            path,
            edge.line,
            edge.col,
            f"{reason} (moving the import inside the function that needs it "
            "makes the seam explicit and exempt)",
        )
    for cycle in find_cycles(ctx.graph):
        head = cycle[0]
        path = paths.get(head)
        if path is None:
            continue
        chain = " -> ".join(cycle + [head])
        yield (
            path,
            1,
            0,
            f"import cycle at module scope: {chain}; break it with a lazy "
            "(function-scoped) import or by extracting the shared piece "
            "downward",
        )


# ---------------------------------------------------------------------------
# RPR008 — knob lifecycle
# ---------------------------------------------------------------------------

_KNOB_ACCESSORS = frozenset(
    {"get_raw", "get_str", "get_bool", "get_int", "get_float", "get_path", "knob"}
)
_KNOBS_MODULE_SUFFIX = ".config.knobs"


def _function_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            end = node.end_lineno if node.end_lineno is not None else node.lineno
            spans.append((node.lineno, end))
    return spans


def _resolve_knob_name(
    node: ast.expr, mod: ModuleFile, ctx: ProgramContext
) -> Optional[str]:
    """Literal or constant-resolved knob name at a call site."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.Name) and mod.module is not None:
        local = ctx.constants.get(mod.module, {}).get(node.id)
        if local is not None:
            return local
    qualified = mod.imports.qualify(node)
    if qualified and "." in qualified:
        owner, attr = qualified.rsplit(".", 1)
        return ctx.constants.get(owner, {}).get(attr)
    return None


def _check_rpr008(ctx: ProgramContext) -> Iterator[RawProgramFinding]:
    registered: Dict[str, Tuple[pathlib.Path, int, int]] = {}
    reads: Dict[str, List[Tuple[pathlib.Path, int, int]]] = {}
    import_time_reads: List[Tuple[pathlib.Path, int, int, str]] = []

    for mod in ctx.files:
        in_registry = mod.module is not None and mod.module.endswith(_KNOBS_MODULE_SUFFIX)
        in_config = mod.module is not None and ".config." in mod.module + "."
        spans = None
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = mod.imports.qualify(node.func) or ""
            # register("REPRO_X", ...) — bare call inside the registry
            # module, qualified elsewhere
            is_register = (in_registry and qualified == "register") or qualified.endswith(
                _KNOBS_MODULE_SUFFIX + ".register"
            )
            if is_register and node.args:
                name = node.args[0]
                if isinstance(name, ast.Constant) and isinstance(name.value, str):
                    registered.setdefault(
                        name.value, (mod.path, node.lineno, node.col_offset)
                    )
                continue
            accessor = qualified.rsplit(".", 1)[-1]
            owner = qualified.rsplit(".", 1)[0] if "." in qualified else ""
            if accessor not in _KNOB_ACCESSORS or not owner.endswith(_KNOBS_MODULE_SUFFIX):
                continue
            if not node.args:
                continue
            name_value = _resolve_knob_name(node.args[0], mod, ctx)
            if name_value is None:
                continue
            site = (mod.path, node.lineno, node.col_offset)
            reads.setdefault(name_value, []).append(site)
            if not in_config:
                if spans is None:
                    spans = _function_spans(mod.tree)
                if not any(start <= node.lineno <= end for start, end in spans):
                    import_time_reads.append((*site, name_value))

    for name, (path, line, col) in sorted(registered.items()):
        if name not in reads:
            yield (
                path,
                line,
                col,
                f"knob {name} is registered but never read through the typed "
                "accessors; delete the registration or wire the consumer",
            )
    for name, sites in sorted(reads.items()):
        if registered and name not in registered:
            for path, line, col in sites:
                yield (
                    path,
                    line,
                    col,
                    f"knob {name} is read but never registered in "
                    "repro.config.knobs — reads of undeclared knobs raise "
                    "UnknownKnobError at runtime",
                )
    for path, line, col, name in import_time_reads:
        yield (
            path,
            line,
            col,
            f"knob {name} is read at import time; resolve it lazily (first "
            "use) so tests and callers can set the environment after import",
        )
    if ctx.docs_dir is not None and registered:
        docs = ctx.docs_dir / "observability.md"
        text = docs.read_text(encoding="utf-8") if docs.exists() else ""
        for name, (path, line, col) in sorted(registered.items()):
            if f"`{name}`" not in text:
                yield (
                    path,
                    line,
                    col,
                    f"knob {name} is missing from the docs table in "
                    f"{docs.name}; regenerate it with "
                    "repro.config.knobs.docs_table()",
                )


# ---------------------------------------------------------------------------
# RPR009 (program half) — metric family collisions / unsafe names
# ---------------------------------------------------------------------------

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*$")


def _check_rpr009_program(ctx: ProgramContext) -> Iterator[RawProgramFinding]:
    families: Dict[str, Dict[str, List[Tuple[pathlib.Path, int, int]]]] = {}
    for mod in ctx.files:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            qualified = mod.imports.qualify(node.func) or ""
            factory = qualified.rsplit(".", 1)[-1]
            owner = qualified.rsplit(".", 1)[0] if "." in qualified else ""
            if factory not in _METRIC_FACTORIES or not owner.endswith(".obs.metrics"):
                continue
            name = node.args[0]
            if not isinstance(name, ast.Constant) or not isinstance(name.value, str):
                continue
            site = (mod.path, node.lineno, node.col_offset)
            families.setdefault(name.value, {}).setdefault(factory, []).append(site)
            if not _METRIC_NAME.match(name.value):
                yield (
                    *site,
                    f"metric name {name.value!r} is not OpenMetrics-safe; use "
                    "lowercase snake_case matching [a-z][a-z0-9_]*",
                )
    for name, by_family in sorted(families.items()):
        if len(by_family) < 2:
            continue
        kinds = "/".join(sorted(by_family))
        for sites in by_family.values():
            for path, line, col in sites:
                yield (
                    path,
                    line,
                    col,
                    f"metric name {name!r} is registered as {kinds}: the "
                    "registry and the OpenMetrics exposition require one "
                    "family per name",
                )


ALL_PROGRAM_RULES: Tuple[ProgramRule, ...] = (
    ProgramRule(
        code="RPR006",
        summary="the package DAG honours the layering contract and has no cycles",
        rationale=(
            "The sim/phys backend seam and non-ideality-aware deployment both "
            "assume machine-checked domain boundaries; an upward import turns "
            "the layer diagram into fiction and cycles break partial imports."
        ),
        check=_check_rpr006,
    ),
    ProgramRule(
        code="RPR008",
        summary=(
            "knob lifecycle: registered knobs are read (lazily) and documented"
        ),
        rationale=(
            "A knob that is registered but dead, undocumented, or frozen at "
            "import time silently stops steering the pipeline — the registry "
            "is only trustworthy if its whole lifecycle is checked."
        ),
        check=_check_rpr008,
    ),
    ProgramRule(
        code="RPR009",
        summary="metric family names are collision-free and OpenMetrics-safe",
        rationale=(
            "Two families under one name merge into a corrupt exposition "
            "series; the registry enforces this at runtime, the lint catches "
            "it before the process ever starts."
        ),
        check=_check_rpr009_program,
    ),
)
