"""The repro-lint engine: file walking, suppressions, rendering.

Separated from the rules so the rule set stays declarative: the engine
owns parsing, the ``# repro-lint: disable=RPRnnn`` suppression
protocol, finding aggregation and the two output formats (human
one-line-per-finding and a machine-readable JSON report).
"""

from __future__ import annotations

import ast
import io
import json
import pathlib
import re
import tokenize
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.lintrules.program import ALL_PROGRAM_RULES, ProgramRule, build_context
from repro.lintrules.rules import ALL_RULES, ImportMap, Rule

__all__ = [
    "Finding",
    "SCHEMA_VERSION",
    "check_source",
    "default_target",
    "iter_python_files",
    "render_human",
    "render_json",
    "run_paths",
    "run_program",
    "suppressed_lines",
]

PathLike = Union[str, pathlib.Path]

SCHEMA_VERSION = 2
"""Version of the ``--json`` report schema.  2 added the field itself,
program-rule findings (RPR006–RPR011) and globally stable ordering."""

_SUPPRESSION = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")

_NON_LIBRARY_FILES = frozenset({"__main__.py"})
"""Module basenames exempt from the library-only rules (RPR004): the
CLI entry point owns stdout by design."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule codes disabled on that line.

    A trailing ``# repro-lint: disable=RPR001`` comment suppresses the
    named rule(s) for findings anchored to that physical line;
    ``disable=RPR001,RPR004`` lists several.  Unknown codes are kept
    verbatim (suppressing a rule that never fires is harmless and
    survives rule renames in flight).
    """
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if not match:
                continue
            codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
            disabled.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return disabled


def check_source(
    source: str,
    path: PathLike = "<string>",
    rules: Sequence[Rule] = ALL_RULES,
    is_library: Optional[bool] = None,
) -> List[Finding]:
    """Run the rule set over one module's source text."""
    path = pathlib.Path(path)
    if is_library is None:
        is_library = path.name not in _NON_LIBRARY_FILES
    tree = ast.parse(source, filename=str(path))
    imports = ImportMap(tree)
    disabled = suppressed_lines(source)
    findings = []
    for rule in rules:
        if rule.applies is not None and not rule.applies(path):
            continue
        for line, col, message in rule.check(tree, imports, is_library):
            if rule.code in disabled.get(line, ()):
                continue
            findings.append(
                Finding(rule=rule.code, path=str(path), line=line, col=col, message=message)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[pathlib.Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: Set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def default_target() -> pathlib.Path:
    """The package's own source tree (what ``python -m repro lint`` checks)."""
    import repro

    return pathlib.Path(repro.__file__).parent


def run_program(
    files: Sequence[pathlib.Path],
    program_rules: Sequence[ProgramRule] = ALL_PROGRAM_RULES,
) -> List[Finding]:
    """Run the whole-program rules (RPR006/RPR008/RPR009) over a file set.

    Suppressions work exactly as for per-file rules: a ``# repro-lint:
    disable=RPRnnn`` comment on the anchored line silences the finding.
    """
    parsed = []
    suppressions: Dict[pathlib.Path, Dict[int, Set[str]]] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        parsed.append((path, source, tree))
        suppressions[path] = suppressed_lines(source)
    context = build_context(parsed)
    findings: List[Finding] = []
    for rule in program_rules:
        for path, line, col, message in rule.check(context):
            if rule.code in suppressions.get(path, {}).get(line, ()):
                continue
            findings.append(
                Finding(rule=rule.code, path=str(path), line=line, col=col, message=message)
            )
    return findings


def run_paths(
    paths: Optional[Iterable[PathLike]] = None,
    rules: Sequence[Rule] = ALL_RULES,
    program_rules: Sequence[ProgramRule] = ALL_PROGRAM_RULES,
) -> List[Finding]:
    """Lint every Python file under ``paths`` (default: the repro package).

    Runs the per-file rules over each module and the whole-program
    rules once over the full set.
    """
    targets = list(paths) if paths else [default_target()]
    files = list(iter_python_files(targets))
    findings: List[Finding] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        findings.extend(check_source(source, path, rules=rules))
    findings.extend(run_program(files, program_rules=program_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_human(findings: Sequence[Finding], checked: Optional[int] = None) -> str:
    """One line per finding plus a summary, ruff-style."""
    lines = [finding.format() for finding in findings]
    suffix = f" across {checked} files" if checked is not None else ""
    if findings:
        per_rule: Dict[str, int] = {}
        for finding in findings:
            per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        counts = ", ".join(f"{code}: {n}" for code, n in sorted(per_rule.items()))
        lines.append(f"repro-lint: {len(findings)} finding(s){suffix} ({counts})")
    else:
        lines.append(f"repro-lint: clean{suffix}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], checked: Optional[int] = None) -> str:
    """Machine-readable report (uploaded as a CI artifact)."""
    per_rule: Dict[str, int] = {}
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in ordered:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    codes = {rule.code for rule in ALL_RULES} | {rule.code for rule in ALL_PROGRAM_RULES}
    payload = {
        "tool": "repro-lint",
        "schema_version": SCHEMA_VERSION,
        "rules": sorted(codes),
        "files_checked": checked,
        "total": len(ordered),
        "by_rule": {code: per_rule[code] for code in sorted(per_rule)},
        "findings": [finding.to_dict() for finding in ordered],
    }
    return json.dumps(payload, indent=2)
