"""Whole-program import graph and the package layering contract.

The per-file rules (RPR001–RPR005) see one module at a time; the
architectural invariants — "``config`` imports nothing internal",
"``device`` never reaches back up into ``xbar``", "no import cycles" —
only exist at the level of the whole package.  This module builds that
view: it walks a source tree *without importing it*, resolves every
``import``/``from ... import`` statement into module→module edges, and
classifies each edge as **top-level** (executed at import time, so it
shapes the real dependency DAG) or **lazy** (function-scoped; a
deliberate seam such as ``repro.parallel.seeding`` reaching up to
``repro.obs.log``, exempt from the layering contract and rendered
dashed in the DOT output).

The layering contract itself is a rank map over the top-level
subpackages of ``repro``: a module-level import must target a strictly
lower rank (imports inside one subpackage are free).  The ranks encode
the architecture that the tree already practises — observability is
low-level cross-cutting infrastructure (``nn`` *may* import ``obs``),
while ``experiments`` and ``__main__`` sit at the top and nothing
library-side may depend on them.  See docs/static-analysis.md for the
rendered diagram and the narrative version of the contract.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = [
    "ImportEdge",
    "ImportGraph",
    "LAYER_RANKS",
    "LayeringContract",
    "REPRO_CONTRACT",
    "build_graph",
    "find_cycles",
    "module_name_for",
]


# ---------------------------------------------------------------------------
# The layering contract for the repro package.
# ---------------------------------------------------------------------------

LAYER_RANKS: Dict[str, int] = {
    # foundation: stdlib-only configuration
    "config": 0,
    # cross-cutting observability (log/metrics/trace); everything above
    # may use it, it only sees config
    "obs": 10,
    # runtime sanitizer: guards are called from every layer above
    "sanitize": 15,
    # mechanism packages with no physics knowledge
    "parallel": 20,
    "quant": 20,
    "cost": 20,
    # device physics (conductance windows, variation, faults)
    "device": 30,
    # the mixed-signal data path and its metrics
    "metrics": 40,
    "xbar": 40,
    "analog": 40,
    "nn": 40,
    # orchestration of the data path into full pipelines
    "core": 50,
    "workloads": 50,
    # consumers of the pipelines
    "serialization": 60,
    "analysis": 60,
    "robustness": 60,
    # the inference serving layer: loads serialized artifacts and
    # feeds request streams through the deployed data path
    "serve": 65,
    # top of the library: experiment entry points and the linter itself
    "experiments": 70,
    "lintrules": 70,
    # the application layer: package root re-exports and the CLI
    "repro": 75,
    "__main__": 80,
}
"""Rank of each top-level ``repro`` subpackage; lower = more
foundational.  Module-level imports must go strictly downward."""


@dataclass(frozen=True)
class LayeringContract:
    """Rank map plus the package root it applies to."""

    root: str
    ranks: Dict[str, int]

    def rank_of(self, module: str) -> Optional[int]:
        """Rank of the subpackage owning ``module``, or None if unranked."""
        layer = self.layer_of(module)
        if layer is None:
            return None
        return self.ranks.get(layer)

    def layer_of(self, module: str) -> Optional[str]:
        """The contract layer a dotted module name belongs to.

        ``repro.xbar.mna`` -> ``xbar``; the bare package root and its
        ``__main__`` are their own (application) layers; names outside
        ``root`` are not covered by the contract.
        """
        if module == self.root:
            return self.root
        prefix = self.root + "."
        if not module.startswith(prefix):
            return None
        head = module[len(prefix):].split(".", 1)[0]
        if head == "__main__":
            return "__main__"
        if head == "__init__":
            return self.root
        return head

    def violation(self, src: str, dst: str) -> Optional[str]:
        """Explain why the top-level edge ``src -> dst`` is illegal.

        Returns None for a legal edge.  Unranked layers (a future
        subpackage not yet added to the rank map) are skipped rather
        than guessed at — add the layer to ``LAYER_RANKS`` when it is
        created.
        """
        src_layer, dst_layer = self.layer_of(src), self.layer_of(dst)
        if src_layer is None or dst_layer is None or src_layer == dst_layer:
            return None
        src_rank = self.ranks.get(src_layer)
        dst_rank = self.ranks.get(dst_layer)
        if src_rank is None or dst_rank is None:
            return None
        if dst_rank > src_rank:
            return (
                f"layer `{src_layer}` (rank {src_rank}) must not import "
                f"`{dst_layer}` (rank {dst_rank}) at module scope: imports "
                "go strictly downward"
            )
        if dst_rank == src_rank:
            return (
                f"layers `{src_layer}` and `{dst_layer}` share rank "
                f"{src_rank}; peer packages must not import each other at "
                "module scope (extract shared code into a lower layer)"
            )
        return None


REPRO_CONTRACT = LayeringContract(root="repro", ranks=LAYER_RANKS)
"""The contract enforced by RPR006 on the shipped tree."""


# ---------------------------------------------------------------------------
# Graph construction.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImportEdge:
    """One resolved import statement: ``src`` imports ``dst``."""

    src: str
    dst: str
    line: int
    col: int
    lazy: bool
    """True when the import is function-scoped (a deliberate seam,
    exempt from layering and cycle checks)."""


@dataclass
class ImportGraph:
    """The module DAG of one package tree."""

    root: str
    modules: Dict[str, pathlib.Path] = field(default_factory=dict)
    edges: List[ImportEdge] = field(default_factory=list)

    def top_level_edges(self) -> List[ImportEdge]:
        return [edge for edge in self.edges if not edge.lazy]

    def adjacency(self, include_lazy: bool = False) -> Dict[str, Set[str]]:
        """module -> set of imported modules (top-level only by default)."""
        adj: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for edge in self.edges:
            if edge.lazy and not include_lazy:
                continue
            adj.setdefault(edge.src, set()).add(edge.dst)
        return adj

    def package_adjacency(
        self, contract: LayeringContract, include_lazy: bool = False
    ) -> Dict[str, Set[str]]:
        """Collapsed layer -> layers graph (for rendering)."""
        adj: Dict[str, Set[str]] = {}
        for edge in self.edges:
            if edge.lazy and not include_lazy:
                continue
            src = contract.layer_of(edge.src)
            dst = contract.layer_of(edge.dst)
            if src is None or dst is None or src == dst:
                continue
            adj.setdefault(src, set()).add(dst)
        return adj

    # -- rendering ----------------------------------------------------------

    def to_dot(self, contract: Optional[LayeringContract] = None) -> str:
        """Graphviz DOT text, collapsed to the layer level when a
        contract is given (lazy edges dashed)."""
        lines = ["digraph repro {", "  rankdir=BT;", '  node [shape=box, fontname="monospace"];']
        if contract is not None:
            solid = self.package_adjacency(contract, include_lazy=False)
            both = self.package_adjacency(contract, include_lazy=True)
            layers = sorted(
                {layer for layer in both} | {d for dsts in both.values() for d in dsts},
                key=lambda name: (contract.ranks.get(name, -1), name),
            )
            for layer in layers:
                rank = contract.ranks.get(layer)
                label = layer if rank is None else f"{layer}\\nrank {rank}"
                lines.append(f'  "{layer}" [label="{label}"];')
            for src in sorted(both):
                for dst in sorted(both[src]):
                    style = "" if dst in solid.get(src, set()) else " [style=dashed]"
                    lines.append(f'  "{src}" -> "{dst}"{style};')
        else:
            for name in sorted(self.modules):
                lines.append(f'  "{name}";')
            for edge in sorted(self.edges, key=lambda e: (e.src, e.dst, e.lazy)):
                style = " [style=dashed]" if edge.lazy else ""
                lines.append(f'  "{edge.src}" -> "{edge.dst}"{style};')
        lines.append("}")
        return "\n".join(lines)

    def to_svg(self, contract: LayeringContract) -> str:
        """Self-contained SVG of the layer graph (no graphviz needed).

        Layout: one column of boxes per rank (foundational layers at
        the bottom), straight edges, lazy edges dashed.  Deliberately
        simple — the diagram documents the contract, it is not a
        general graph renderer.
        """
        both = self.package_adjacency(contract, include_lazy=True)
        solid = self.package_adjacency(contract, include_lazy=False)
        layers = sorted(
            {layer for layer in both}
            | {d for dsts in both.values() for d in dsts}
            | set(contract.ranks),
            key=lambda name: (contract.ranks.get(name, -1), name),
        )
        by_rank: Dict[int, List[str]] = {}
        for layer in layers:
            by_rank.setdefault(contract.ranks.get(layer, -1), []).append(layer)
        ranks = sorted(by_rank)

        box_w, box_h, gap_x, gap_y, margin = 130, 34, 24, 56, 20
        max_row = max(len(row) for row in by_rank.values())
        width = margin * 2 + max_row * box_w + (max_row - 1) * gap_x
        height = margin * 2 + len(ranks) * box_h + (len(ranks) - 1) * gap_y

        centers: Dict[str, Tuple[float, float]] = {}
        boxes: List[str] = []
        for row_idx, rank in enumerate(reversed(ranks)):  # top row = highest rank
            row = by_rank[rank]
            row_w = len(row) * box_w + (len(row) - 1) * gap_x
            x0 = (width - row_w) / 2
            y = margin + row_idx * (box_h + gap_y)
            for col, layer in enumerate(row):
                x = x0 + col * (box_w + gap_x)
                centers[layer] = (x + box_w / 2, y + box_h / 2)
                boxes.append(
                    f'<rect x="{x:.0f}" y="{y:.0f}" width="{box_w}" height="{box_h}" '
                    'rx="5" fill="#eef4fb" stroke="#35506b"/>'
                    f'<text x="{x + box_w / 2:.0f}" y="{y + box_h / 2 + 4:.0f}" '
                    'text-anchor="middle" font-family="monospace" font-size="12" '
                    f'fill="#17293c">{layer}</text>'
                )
        edges_svg: List[str] = []
        for src in sorted(both):
            for dst in sorted(both[src]):
                if src not in centers or dst not in centers:
                    continue
                (x1, y1), (x2, y2) = centers[src], centers[dst]
                dashed = "" if dst in solid.get(src, set()) else ' stroke-dasharray="5,4"'
                edges_svg.append(
                    f'<line x1="{x1:.0f}" y1="{y1:.0f}" x2="{x2:.0f}" y2="{y2:.0f}" '
                    f'stroke="#8aa3bd" stroke-width="1" opacity="0.55"{dashed}/>'
                )
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
            f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">\n'
            '<!-- generated by: python -m repro lint --graph svg -->\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            + "\n".join(edges_svg)
            + "\n"
            + "\n".join(boxes)
            + "\n</svg>\n"
        )


def module_name_for(path: pathlib.Path) -> Optional[str]:
    """Dotted module name of a source file, found from ``__init__.py``
    markers (``.../src/repro/xbar/mna.py`` -> ``repro.xbar.mna``).

    Returns None for scripts outside any package.
    """
    path = path.resolve()
    leaf = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    package_parts: List[str] = []
    while (current / "__init__.py").exists():
        package_parts.append(current.name)
        current = current.parent
    if not package_parts:
        return None
    return ".".join(list(reversed(package_parts)) + leaf)


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of a relative ``from .. import x``.

    Python resolves ``level`` dots against the module's package: the
    module itself when it is a package (``__init__.py``), its parent
    otherwise; each extra dot climbs one more level.
    """
    package = module.split(".") if is_package else module.split(".")[:-1]
    climb = node.level - 1
    if climb > len(package):
        return None
    base = package[: len(package) - climb]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _iter_import_targets(
    module: str,
    is_package: bool,
    tree: ast.AST,
) -> Iterator[Tuple[str, int, int, bool]]:
    """Yield ``(target_module, line, col, lazy)`` for every import.

    ``from pkg import name`` yields ``pkg`` *and* ``pkg.name`` — the
    latter matters when ``name`` is itself a submodule (``from
    repro.xbar import mna``); the graph keeps whichever targets exist
    as modules and falls back to the package for attribute imports.
    An import is **lazy** when any enclosing scope is a function or an
    ``if TYPE_CHECKING:`` block (annotation-only, never executed).
    """
    lazy_spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = node.end_lineno if node.end_lineno is not None else node.lineno
            lazy_spans.append((node.lineno, end))
        elif isinstance(node, ast.If):
            test = node.test
            guard = (
                test.id
                if isinstance(test, ast.Name)
                else test.attr
                if isinstance(test, ast.Attribute)
                else None
            )
            if guard == "TYPE_CHECKING":
                end = node.end_lineno if node.end_lineno is not None else node.lineno
                lazy_spans.append((node.lineno, end))

    def is_lazy(line: int) -> bool:
        return any(start <= line <= end for start, end in lazy_spans)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno, node.col_offset, is_lazy(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, is_package, node)
            else:
                base = node.module
            if base is None:
                continue
            lazy = is_lazy(node.lineno)
            yield base, node.lineno, node.col_offset, lazy
            for alias in node.names:
                if alias.name != "*":
                    yield f"{base}.{alias.name}", node.lineno, node.col_offset, lazy


def build_graph(
    files: Iterable[Tuple[pathlib.Path, ast.AST]],
    root: Optional[str] = None,
) -> ImportGraph:
    """Build the import graph of one package tree.

    ``files`` pairs each source path with its parsed AST (the engine
    already parses every file once; reuse those trees).  ``root``
    restricts edges to modules under that package; by default it is
    inferred as the top-level package owning the majority of files.
    """
    named: List[Tuple[str, pathlib.Path, ast.AST]] = []
    for path, tree in files:
        name = module_name_for(path)
        if name is not None:
            named.append((name, path, tree))
    if root is None:
        tops = [name.split(".")[0] for name, _, _ in named]
        root = max(set(tops), key=tops.count) if tops else ""
    graph = ImportGraph(root=root)
    for name, path, _ in named:
        if name == root or name.startswith(root + "."):
            graph.modules[name] = path
    prefix = root + "."
    for name, path, tree in named:
        if not (name == root or name.startswith(prefix)):
            continue
        is_package = path.name == "__init__.py"
        seen: Set[Tuple[str, int, bool]] = set()
        for target, line, col, lazy in _iter_import_targets(name, is_package, tree):
            if not (target == root or target.startswith(prefix)):
                continue
            # collapse `from repro.xbar import mna` to the deepest
            # target that is a real module; attribute imports resolve
            # to their owning module
            resolved = target
            while resolved and resolved not in graph.modules:
                resolved = resolved.rpartition(".")[0]
            if not resolved or resolved == name:
                continue
            # `from repro.obs import metrics` inside repro.obs.telemetry
            # touches its own package __init__ — an artifact of the
            # import machinery (tolerated at runtime), not a dependency
            if name.startswith(resolved + "."):
                continue
            key = (resolved, line, lazy)
            if key in seen:
                continue
            seen.add(key)
            graph.edges.append(
                ImportEdge(src=name, dst=resolved, line=line, col=col, lazy=lazy)
            )
    return graph


def find_cycles(graph: ImportGraph) -> List[List[str]]:
    """Cycles among top-level edges (each reported once, rotated so the
    lexicographically smallest module leads)."""
    adj = graph.adjacency(include_lazy=False)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    def strongconnect(node: str) -> None:
        # iterative Tarjan: recursion depth is unbounded on deep chains
        work = [(node, iter(sorted(adj.get(node, ()))))]
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in adj:
                    continue
                if neighbour not in index:
                    index[neighbour] = lowlink[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(sorted(adj.get(neighbour, ())))))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[current] = min(lowlink[current], index[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    sccs.append(component)
                elif component and component[0] in adj.get(component[0], set()):
                    sccs.append(component)  # self-import

    for name in sorted(adj):
        if name not in index:
            strongconnect(name)
    cycles = []
    for component in sccs:
        pivot = min(component)
        idx = component.index(pivot)
        cycles.append(component[idx:] + component[:idx])
    return sorted(cycles)
