"""repro-lint: AST-based enforcement of the repository's invariants.

The reproducibility story of this repo (serial/parallel equivalence,
replayable Monte-Carlo noise, provenance-complete run manifests) rests
on conventions that ordinary linters cannot see.  This package encodes
them as named, machine-checked rules:

========  ==========================================================
RPR001    no unseeded ``np.random.default_rng()`` / ``Generator()``
          in library code — thread an rng or use ``fresh_rng()``
RPR002    no legacy global RNG state (``np.random.seed`` /
          ``np.random.rand`` / stdlib ``random``)
RPR003    every environment read goes through the
          ``repro.config.knobs`` registry, not ``os.environ``
RPR004    no ``print()`` / ``sys.stdout`` in library modules —
          stdout is reserved for result tables, diagnostics go to
          ``repro.obs.log``
RPR005    no hand-rolled ``isinstance(rng, Generator)``
          normalization — use ``seeding.ensure_rng()``
========  ==========================================================

Run with ``python -m repro lint [--json]``; suppress one finding with
an end-of-line ``# repro-lint: disable=RPRnnn`` comment.  See
``docs/static-analysis.md`` for the full catalogue and rationale.
"""

from repro.lintrules.engine import (
    Finding,
    check_source,
    iter_python_files,
    render_human,
    render_json,
    run_paths,
    suppressed_lines,
)
from repro.lintrules.rules import ALL_RULES, Rule, rule_catalogue

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "check_source",
    "iter_python_files",
    "render_human",
    "render_json",
    "rule_catalogue",
    "run_paths",
    "suppressed_lines",
]
