"""repro-lint: AST-based enforcement of the repository's invariants.

The reproducibility story of this repo (serial/parallel equivalence,
replayable Monte-Carlo noise, provenance-complete run manifests) rests
on conventions that ordinary linters cannot see.  This package encodes
them as named, machine-checked rules — per-file AST checks plus
whole-program analyses over the package import graph:

========  ==========================================================
RPR001    no unseeded ``np.random.default_rng()`` / ``Generator()``
          in library code — thread an rng or use ``fresh_rng()``
RPR002    no legacy global RNG state (``np.random.seed`` /
          ``np.random.rand`` / stdlib ``random``)
RPR003    every environment read goes through the
          ``repro.config.knobs`` registry, not ``os.environ``
RPR004    no ``print()`` / ``sys.stdout`` in library modules —
          stdout is reserved for result tables, diagnostics go to
          ``repro.obs.log``
RPR005    no hand-rolled ``isinstance(rng, Generator)``
          normalization — use ``seeding.ensure_rng()``
RPR006    the package DAG honours the layering contract
          (``lintrules.graph``) and is cycle-free at module scope
RPR007    hot-path packages (nn/xbar/quant/analog) allocate through
          ``repro.config.dtype.astype``, never raw float dtype
          literals
RPR008    knob lifecycle: every registered ``REPRO_*`` knob is read
          (lazily, never at import time) and documented
RPR009    metric objects come from the registry factories and family
          names never collide
RPR010    executors and SHM arenas are context-managed
RPR011    trace spans are opened with ``with span(...)``
========  ==========================================================

Run with ``python -m repro lint [--json | --graph dot|svg]``; suppress
one finding with an end-of-line ``# repro-lint: disable=RPRnnn``
comment (add a justification).  See ``docs/static-analysis.md`` for
the full catalogue, the layering contract and the rationale.
"""

from repro.lintrules.engine import (
    SCHEMA_VERSION,
    Finding,
    check_source,
    iter_python_files,
    render_human,
    render_json,
    run_paths,
    run_program,
    suppressed_lines,
)
from repro.lintrules.graph import (
    LAYER_RANKS,
    REPRO_CONTRACT,
    ImportGraph,
    LayeringContract,
    build_graph,
    find_cycles,
)
from repro.lintrules.program import ALL_PROGRAM_RULES, ProgramRule
from repro.lintrules.rules import ALL_RULES, Rule, rule_catalogue

__all__ = [
    "ALL_PROGRAM_RULES",
    "ALL_RULES",
    "Finding",
    "ImportGraph",
    "LAYER_RANKS",
    "LayeringContract",
    "ProgramRule",
    "REPRO_CONTRACT",
    "Rule",
    "SCHEMA_VERSION",
    "build_graph",
    "check_source",
    "find_cycles",
    "iter_python_files",
    "render_human",
    "render_json",
    "rule_catalogue",
    "run_paths",
    "run_program",
    "suppressed_lines",
]
