"""Application error metrics used in Table 1.

The paper evaluates each benchmark with the metric native to its
application domain (Table 1, "Error Metric" column):

* **average relative error** — FFT, Inversek2j (numeric kernels);
* **miss rate** — Jmeint (binary classification);
* **image diff** — JPEG, K-Means, Sobel (image pipelines).

All metrics operate on engineering-unit arrays (the workload layer
un-normalizes predictions before scoring).
"""

from __future__ import annotations

import numpy as np

__all__ = ["average_relative_error", "miss_rate", "image_diff", "METRICS"]


def _check_shapes(predicted: np.ndarray, target: np.ndarray) -> None:
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")


def average_relative_error(
    predicted: np.ndarray,
    target: np.ndarray,
    epsilon: float = 0.01,
    cap: float = 1.0,
) -> float:
    """Mean of clamped ``|pred - true| / max(|true|, epsilon)``.

    ``epsilon`` guards near-zero targets and ``cap`` bounds each
    element's contribution at 100% (both AxBench-style conventions —
    without the cap, a handful of near-zero targets dominates the mean
    for kernels like Inversek2j whose outputs cross zero).
    """
    predicted = np.asarray(predicted, dtype=float)
    target = np.asarray(target, dtype=float)
    _check_shapes(predicted, target)
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    denom = np.maximum(np.abs(target), epsilon)
    relative = np.minimum(np.abs(predicted - target) / denom, cap)
    return float(np.mean(relative))


def miss_rate(predicted: np.ndarray, target: np.ndarray) -> float:
    """Classification miss rate for one-hot (or logit) outputs.

    Class = argmax along the last axis; with a single output column,
    the decision threshold is 0.5.
    """
    predicted = np.asarray(predicted, dtype=float)
    target = np.asarray(target, dtype=float)
    _check_shapes(predicted, target)
    if predicted.ndim == 1 or predicted.shape[-1] == 1:
        pred_cls = (predicted.reshape(len(predicted), -1)[:, 0] >= 0.5).astype(int)
        true_cls = (target.reshape(len(target), -1)[:, 0] >= 0.5).astype(int)
    else:
        pred_cls = np.argmax(predicted, axis=-1)
        true_cls = np.argmax(target, axis=-1)
    return float(np.mean(pred_cls != true_cls))


def image_diff(predicted: np.ndarray, target: np.ndarray, value_range: float = 1.0) -> float:
    """Mean absolute pixel difference normalized by the value range."""
    predicted = np.asarray(predicted, dtype=float)
    target = np.asarray(target, dtype=float)
    _check_shapes(predicted, target)
    if value_range <= 0:
        raise ValueError(f"value_range must be positive, got {value_range}")
    return float(np.mean(np.abs(predicted - target)) / value_range)


METRICS = {
    "average_relative_error": average_relative_error,
    "miss_rate": miss_rate,
    "image_diff": image_diff,
}
"""Name -> callable registry used by the workload layer."""
