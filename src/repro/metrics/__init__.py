"""Application error metrics and robustness statistics."""

from repro.metrics.error import METRICS, average_relative_error, image_diff, miss_rate
from repro.metrics.image import psnr, ssim
from repro.metrics.robustness import (
    NoisyEvaluation,
    evaluate_under_noise,
    noise_sweep,
    robustness_index,
)
from repro.metrics.signal import bit_error_rate, snr_db, weighted_bit_error

__all__ = [
    "average_relative_error",
    "miss_rate",
    "image_diff",
    "METRICS",
    "psnr",
    "ssim",
    "NoisyEvaluation",
    "evaluate_under_noise",
    "noise_sweep",
    "robustness_index",
    "snr_db",
    "bit_error_rate",
    "weighted_bit_error",
]
