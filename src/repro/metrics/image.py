"""Image quality metrics: PSNR and a windowed SSIM.

The paper scores its image benchmarks with the mean-absolute "image
diff"; these standard metrics complement it for the JPEG / Sobel /
K-Means pipelines (a reconstruction with equal image-diff can still
differ perceptually, which SSIM captures).

Both operate on grayscale arrays; RGB images are scored channel-wise
and averaged.
"""

from __future__ import annotations

import numpy as np

__all__ = ["psnr", "ssim"]


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical inputs)."""
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if data_range <= 0:
        raise ValueError(f"data_range must be positive, got {data_range}")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(data_range**2 / mse)


def _window_means(image: np.ndarray, window: int) -> np.ndarray:
    """Non-overlapping window means via block reduction."""
    h = (image.shape[0] // window) * window
    w = (image.shape[1] // window) * window
    blocks = image[:h, :w].reshape(h // window, window, w // window, window)
    return blocks.mean(axis=(1, 3))


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 255.0,
    window: int = 8,
) -> float:
    """Structural similarity over non-overlapping windows.

    A simplified (block rather than Gaussian-sliding) SSIM: for each
    ``window x window`` tile, compare local means, variances and
    covariance with the standard SSIM formula, then average the tile
    scores.  Identical images score 1.0; value drops toward 0 (or
    slightly below) as structure diverges.
    """
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if reference.ndim == 3:
        channels = [
            ssim(reference[..., c], test[..., c], data_range, window)
            for c in range(reference.shape[-1])
        ]
        return float(np.mean(channels))
    if reference.ndim != 2:
        raise ValueError(f"expected a 2-D or 3-D image, got shape {reference.shape}")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if min(reference.shape) < window:
        raise ValueError("image smaller than one SSIM window")
    if data_range <= 0:
        raise ValueError(f"data_range must be positive, got {data_range}")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    h = (reference.shape[0] // window) * window
    w = (reference.shape[1] // window) * window

    def tiles(img: np.ndarray) -> np.ndarray:
        return (
            img[:h, :w]
            .reshape(h // window, window, w // window, window)
            .transpose(0, 2, 1, 3)
            .reshape(-1, window * window)
        )

    a = tiles(reference)
    b = tiles(test)
    mu_a = a.mean(axis=1)
    mu_b = b.mean(axis=1)
    var_a = a.var(axis=1)
    var_b = b.var(axis=1)
    cov = ((a - mu_a[:, None]) * (b - mu_b[:, None])).mean(axis=1)
    score = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) / (
        (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    )
    return float(np.mean(score))
