"""Robustness evaluation under non-ideal factors (Sec. 5.3 / Fig. 5).

The paper statistically evaluates each noisy condition over many
Monte-Carlo trials ("we evaluate the system performance 1,000 times
and statistically analyze the average result").  This module provides
that loop plus the robustness index used by the DSE flow: Algorithm 2
takes a robustness requirement ``gamma``; we define

    gamma = clean_metric_value / noisy_metric_value      (error-type metric)

so ``gamma`` in (0, 1] and larger is more robust (1 = noise changes
nothing).  The definition matters only as a monotone ranking — the DSE
compares candidates under the *same* metric.

Performance: :func:`evaluate_under_noise` prefers a *batched* predictor
(``predict_trials`` on the deployed systems) that pushes a
``(trials, samples, ports)`` stack through the crossbars in one pass —
bit-identical to the serial per-trial loop under fixed seeds (see
``docs/performance.md``).  :func:`noise_sweep` optionally fans the
noise levels out over a :mod:`repro.parallel` executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.device.variation import NonIdealFactors, TrialSpec
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = ["NoisyEvaluation", "evaluate_under_noise", "robustness_index", "noise_sweep"]

Predictor = Callable[[np.ndarray, NonIdealFactors, int], np.ndarray]
"""Signature: (inputs, noise, trial) -> predictions."""

BatchPredictor = Callable[[np.ndarray, NonIdealFactors, TrialSpec], np.ndarray]
"""Signature: (inputs, noise, trials) -> stacked (trials, ...) predictions."""

Metric = Callable[[np.ndarray, np.ndarray], float]

PredictorLike = Union[Predictor, object]
"""A per-trial callable, or a system object exposing ``predict`` (and
ideally ``predict_trials`` for the vectorized path)."""


@dataclass(frozen=True)
class NoisyEvaluation:
    """Statistics of a metric over Monte-Carlo noise trials."""

    noise: NonIdealFactors
    trials: int
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def worst(self) -> float:
        return float(np.max(self.values))


def evaluate_under_noise(
    predictor: PredictorLike,
    x: np.ndarray,
    y_true: np.ndarray,
    metric: Metric,
    noise: NonIdealFactors,
    trials: int = 30,
    batch_predictor: Optional[BatchPredictor] = None,
    vectorize: bool = True,
) -> NoisyEvaluation:
    """Run the predictor ``trials`` times under fresh noise draws.

    Each trial re-draws process variation and signal fluctuation (via
    the trial index fed to the noise object's RNG), mirroring the
    paper's 1,000-evaluation statistics at a configurable budget.

    Parameters
    ----------
    predictor:
        Either a callable ``(x, noise, trial) -> predictions`` or a
        deployed system object (``MEI``/``SAAB``/``TraditionalRCS``)
        exposing ``predict``.
    batch_predictor:
        Explicit ``(x, noise, trials) -> (trials, ...)`` stack
        predictor.  Defaults to the predictor's own ``predict_trials``
        (when present and ``vectorize`` is true), which draws all
        trials' variation tensors up front and replaces the per-trial
        loop with stacked matmuls — bit-identical under fixed seeds.
    vectorize:
        Set False to force the serial per-trial reference loop.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if noise.is_ideal:
        trials = 1
    if batch_predictor is None and vectorize:
        batch_predictor = getattr(predictor, "predict_trials", None)
    with span(
        "noise-eval",
        trials=trials,
        sigma_pv=float(noise.sigma_pv),
        sigma_sf=float(noise.sigma_sf),
        vectorized=batch_predictor is not None,
    ) as sp:
        if batch_predictor is not None:
            stack = np.asarray(batch_predictor(x, noise, trials))
            values = np.array([metric(stack[t], y_true) for t in range(trials)])
        else:
            fn = predictor if callable(predictor) else predictor.predict
            values = np.array([metric(fn(x, noise, t), y_true) for t in range(trials)])
        sp.set(mean=float(values.mean()), std=float(values.std()))
    obs_metrics.counter("mc_trials_evaluated").inc(trials)
    return NoisyEvaluation(noise=noise, trials=trials, values=values)


def robustness_index(clean_error: float, noisy_error: float) -> float:
    """Robustness ``gamma``: ratio of clean to noisy error, in (0, 1].

    Degenerate cases: if both errors are ~0 the system is perfectly
    robust (1.0); if only the clean error is ~0 any noise-induced
    error counts as total fragility (0.0).
    """
    if clean_error < 0 or noisy_error < 0:
        raise ValueError("error values must be non-negative")
    if noisy_error <= 1e-15:
        return 1.0
    return min(1.0, clean_error / noisy_error)


def _sweep_task(args) -> NoisyEvaluation:
    """One noise level of a sweep (module-level for pickling)."""
    predictor, x, y_true, metric, noise, trials, vectorize = args
    return evaluate_under_noise(
        predictor, x, y_true, metric, noise, trials, vectorize=vectorize
    )


def noise_sweep(
    predictor: PredictorLike,
    x: np.ndarray,
    y_true: np.ndarray,
    metric: Metric,
    noises: Sequence[NonIdealFactors],
    trials: int = 30,
    vectorize: bool = True,
    workers: Optional[int] = None,
    executor=None,
) -> List[NoisyEvaluation]:
    """Evaluate a predictor across a list of noise levels (Fig. 5 axis).

    The noise levels are embarrassingly parallel; pass ``workers`` (or
    set ``REPRO_WORKERS``) or an explicit :mod:`repro.parallel`
    executor to fan them out.  Results keep the input order and are
    identical to the serial sweep (each level owns its seeds).
    """
    from repro.parallel import get_executor

    executor = executor if executor is not None else get_executor(workers)
    tasks = [(predictor, x, y_true, metric, n, trials, vectorize) for n in noises]
    return executor.map(_sweep_task, tasks)
