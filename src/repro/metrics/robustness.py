"""Robustness evaluation under non-ideal factors (Sec. 5.3 / Fig. 5).

The paper statistically evaluates each noisy condition over many
Monte-Carlo trials ("we evaluate the system performance 1,000 times
and statistically analyze the average result").  This module provides
that loop plus the robustness index used by the DSE flow: Algorithm 2
takes a robustness requirement ``gamma``; we define

    gamma = clean_metric_value / noisy_metric_value      (error-type metric)

so ``gamma`` in (0, 1] and larger is more robust (1 = noise changes
nothing).  The definition matters only as a monotone ranking — the DSE
compares candidates under the *same* metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.device.variation import NonIdealFactors

__all__ = ["NoisyEvaluation", "evaluate_under_noise", "robustness_index", "noise_sweep"]

Predictor = Callable[[np.ndarray, NonIdealFactors, int], np.ndarray]
"""Signature: (inputs, noise, trial) -> predictions."""

Metric = Callable[[np.ndarray, np.ndarray], float]


@dataclass(frozen=True)
class NoisyEvaluation:
    """Statistics of a metric over Monte-Carlo noise trials."""

    noise: NonIdealFactors
    trials: int
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def worst(self) -> float:
        return float(np.max(self.values))


def evaluate_under_noise(
    predictor: Predictor,
    x: np.ndarray,
    y_true: np.ndarray,
    metric: Metric,
    noise: NonIdealFactors,
    trials: int = 30,
) -> NoisyEvaluation:
    """Run the predictor ``trials`` times under fresh noise draws.

    Each trial re-draws process variation and signal fluctuation (via
    the trial index fed to the noise object's RNG), mirroring the
    paper's 1,000-evaluation statistics at a configurable budget.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if noise.is_ideal:
        trials = 1
    values = np.array([metric(predictor(x, noise, t), y_true) for t in range(trials)])
    return NoisyEvaluation(noise=noise, trials=trials, values=values)


def robustness_index(clean_error: float, noisy_error: float) -> float:
    """Robustness ``gamma``: ratio of clean to noisy error, in (0, 1].

    Degenerate cases: if both errors are ~0 the system is perfectly
    robust (1.0); if only the clean error is ~0 any noise-induced
    error counts as total fragility (0.0).
    """
    if clean_error < 0 or noisy_error < 0:
        raise ValueError("error values must be non-negative")
    if noisy_error <= 1e-15:
        return 1.0
    return min(1.0, clean_error / noisy_error)


def noise_sweep(
    predictor: Predictor,
    x: np.ndarray,
    y_true: np.ndarray,
    metric: Metric,
    noises: Sequence[NonIdealFactors],
    trials: int = 30,
) -> List[NoisyEvaluation]:
    """Evaluate a predictor across a list of noise levels (Fig. 5 axis)."""
    return [evaluate_under_noise(predictor, x, y_true, metric, n, trials) for n in noises]
