"""Signal-quality metrics: SNR and per-bit-plane error rates.

The error-budget harness (:mod:`repro.analysis.errorbudget`) compares a
deployed mixed-signal pipeline against stage-idealized counterfactuals;
these helpers quantify how far a degraded signal sits from its reference
(``snr_db``) and *where* in the bit planes the damage lands
(``bit_error_rate`` with ``bits=``) — MSB flips cost exponentially more
than LSB flips under the paper's Eq. 5 weighted loss, which
``weighted_bit_error`` reproduces.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.quant.binarray import msb_weights

__all__ = ["snr_db", "bit_error_rate", "weighted_bit_error"]


def snr_db(reference: np.ndarray, test: np.ndarray) -> float:
    """Signal-to-noise ratio of ``test`` against ``reference``, in dB.

    Signal power is the mean square of ``reference``; noise power is the
    mean square of ``test - reference`` (inputs broadcast against each
    other, so a single reference can score a stack of noisy trials).
    Returns ``inf`` for a perfect match and ``-inf`` for a silent
    reference corrupted by non-zero noise.
    """
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    noise = test - reference  # broadcasts; raises on incompatible shapes
    noise_power = float(np.mean(np.square(noise)))
    signal_power = float(np.mean(np.square(np.broadcast_to(reference, noise.shape))))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(signal_power / noise_power))


def bit_error_rate(
    predicted: np.ndarray,
    target: np.ndarray,
    bits: Optional[int] = None,
) -> Union[float, np.ndarray]:
    """Fraction of mismatched bits, overall or split per bit plane.

    With ``bits=None`` returns the scalar rate over every element.  With
    ``bits=B`` the last axis is interpreted as MSB-first groups of ``B``
    bits (the layout ``FixedPointCodec`` emits) and the return value is a
    ``(B,)`` array of per-plane rates, index 0 being the MSB plane.
    ``predicted`` may carry leading broadcast axes (e.g. a noise-trial
    stack) that ``target`` lacks.
    """
    errors = np.not_equal(np.asarray(predicted), np.asarray(target))
    if bits is None:
        return float(errors.mean())
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    width = errors.shape[-1]
    if width % bits != 0:
        raise ValueError(
            f"last axis ({width}) is not a whole number of {bits}-bit groups"
        )
    planes = errors.reshape(errors.shape[:-1] + (width // bits, bits))
    return planes.mean(axis=tuple(range(planes.ndim - 1)))


def weighted_bit_error(plane_rates: np.ndarray, decay: float = 2.0) -> float:
    """Eq. 5-style weighted bit error: MSB planes dominate the score.

    ``plane_rates`` is the MSB-first output of :func:`bit_error_rate`
    with ``bits=``; weights follow the same geometric ``decay`` ramp as
    the training loss (:func:`repro.quant.binarray.msb_weights`), and
    the result is normalized to stay a rate in ``[0, 1]``.
    """
    rates = np.asarray(plane_rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError("plane_rates must be a non-empty 1-D array")
    weights = msb_weights(rates.size, decay=decay)
    return float(np.dot(weights, rates) / weights.sum())
