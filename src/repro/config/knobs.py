"""Registry of every ``REPRO_*`` environment knob the pipeline reads.

The reproduction is steered by a small set of environment variables
(``REPRO_WORKERS``, ``REPRO_TRACE``, ...).  Before this module existed
they were read at nine scattered ``os.environ`` call sites, which made
the set undiscoverable and let typos fail silently.  Now:

* every knob is **declared** here exactly once (name, type, default,
  documentation);
* every **read** goes through the typed accessors below — reading an
  undeclared knob raises :class:`UnknownKnobError` immediately;
* the docs table (``docs/observability.md``) is rendered from the same
  registry by :func:`docs_table`, and a test asserts the two agree.

``repro-lint`` rule RPR003 forbids direct ``os.environ`` access in
library code, so this module is the single place the process
environment is consulted (the two suppressed lines below).

This module is stdlib-only and must not import any other ``repro``
package: it sits below :mod:`repro.obs` in the layering.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TRUTHY",
    "Knob",
    "UnknownKnobError",
    "all_knobs",
    "docs_table",
    "get_bool",
    "get_float",
    "get_int",
    "get_path",
    "get_raw",
    "get_str",
    "knob",
    "snapshot",
    "unregistered",
]

TRUTHY = frozenset({"1", "true", "yes", "on"})
"""Accepted spellings for an enabled boolean knob (case-insensitive)."""

KNOB_PREFIX = "REPRO_"


class UnknownKnobError(KeyError):
    """Raised when code reads a knob that was never registered."""

    def __init__(self, name: str) -> None:
        registered = ", ".join(sorted(_REGISTRY))
        super().__init__(
            f"unknown knob {name!r}; registered knobs: {registered}. "
            "Declare new knobs in repro.config.knobs before reading them."
        )
        self.name = name


@dataclass(frozen=True)
class Knob:
    """Declaration of one environment knob.

    Parameters
    ----------
    name:
        The environment variable, must start with ``REPRO_``.
    kind:
        Semantic type rendered in the docs table: ``str`` / ``int`` /
        ``bool`` / ``path`` / ``enum`` / ``level``.
    default:
        Human-readable default used when the variable is unset or
        empty (``None`` = no default; accessors return ``None``).
    description:
        One-line documentation rendered into the knob table.
    choices:
        Legal values for ``enum`` knobs (informational).
    """

    name: str
    kind: str
    default: Optional[str]
    description: str
    choices: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name.startswith(KNOB_PREFIX):
            raise ValueError(f"knob names must start with {KNOB_PREFIX!r}, got {self.name!r}")
        if self.kind not in ("str", "int", "float", "bool", "path", "enum", "level"):
            raise ValueError(f"unknown knob kind {self.kind!r} for {self.name}")
        if not self.description:
            raise ValueError(f"knob {self.name} needs a description")


_REGISTRY: Dict[str, Knob] = {}


def register(
    name: str,
    kind: str,
    default: Optional[str],
    description: str,
    choices: Tuple[str, ...] = (),
) -> Knob:
    """Declare a knob; idempotent only for identical declarations."""
    declared = Knob(name=name, kind=kind, default=default,
                    description=description, choices=choices)
    existing = _REGISTRY.get(name)
    if existing is not None and existing != declared:
        raise ValueError(f"conflicting re-registration of knob {name}")
    _REGISTRY[name] = declared
    return declared


def knob(name: str) -> Knob:
    """The declaration for one registered knob."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownKnobError(name) from None


def all_knobs() -> List[Knob]:
    """Every registered knob, sorted by name (docs/table order)."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# Typed accessors.  All of them raise UnknownKnobError for undeclared
# names; the two os.environ touches below are the only ones allowed in
# library code (enforced by repro-lint RPR003).
# ---------------------------------------------------------------------------


def get_raw(name: str) -> Optional[str]:
    """The raw environment value, or ``None`` when unset.

    Does *not* apply the registered default — callers that need
    unset/empty discrimination (e.g. the worker-count parser, which
    warns on junk) use this and handle fallback themselves.
    """
    declared = knob(name)
    return os.environ.get(declared.name)  # repro-lint: disable=RPR003


def get_str(name: str) -> Optional[str]:
    """Stripped string value, falling back to the registered default."""
    raw = get_raw(name)
    if raw is None or not raw.strip():
        return knob(name).default
    return raw.strip()


def get_bool(name: str) -> bool:
    """Boolean value: any spelling in :data:`TRUTHY` counts as on."""
    raw = get_raw(name)
    if raw is None or not raw.strip():
        default = knob(name).default
        raw = default if default is not None else ""
    return raw.strip().lower() in TRUTHY


def get_int(name: str) -> Optional[int]:
    """Integer value; raises :class:`ValueError` on a non-integer.

    Returns the registered default (coerced) when unset/empty, or
    ``None`` when there is no default either.
    """
    raw = get_str(name)
    if raw is None:
        return None
    return int(raw)


def get_float(name: str) -> Optional[float]:
    """Float value; raises :class:`ValueError` on a non-number.

    Returns the registered default (coerced) when unset/empty, or
    ``None`` when there is no default either.
    """
    raw = get_str(name)
    if raw is None:
        return None
    return float(raw)


def get_path(name: str) -> Optional[str]:
    """Path-valued knob; empty/unset falls back to the default."""
    return get_str(name)


def snapshot() -> Dict[str, str]:
    """All ``REPRO_*`` variables currently set (registered or not).

    Provenance capture for run manifests — records exactly what the
    process saw, including stray unregistered variables (which
    :func:`unregistered` surfaces so tests can reject them).
    """
    items = sorted(os.environ.items())  # repro-lint: disable=RPR003
    return {k: v for k, v in items if k.startswith(KNOB_PREFIX)}


def unregistered() -> List[str]:
    """``REPRO_*`` variables set in the environment but never declared."""
    return [name for name in snapshot() if name not in _REGISTRY]


def docs_table() -> str:
    """The knob reference as a markdown table (rendered into the docs)."""
    rows = [
        "| Knob | Type | Default | Description |",
        "| --- | --- | --- | --- |",
    ]
    for declared in all_knobs():
        default = "(unset)" if declared.default is None else f"`{declared.default}`"
        kind = declared.kind
        if declared.choices:
            kind = f"{kind}: {' / '.join(declared.choices)}"
        rows.append(f"| `{declared.name}` | {kind} | {default} | {declared.description} |")
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# The knob catalogue.  Declarations live here (not in the owning
# modules) so the full set is readable in one screen; the owning
# modules re-export their names as *_ENV constants.
# ---------------------------------------------------------------------------

register(
    "REPRO_LOG",
    "level",
    None,
    "Diagnostic log level on stderr (`debug`/`info`/`warning`/`error` or a "
    "numeric level). Library default `warning`; the CLI defaults to `info`.",
)
register(
    "REPRO_LOG_JSON",
    "path",
    None,
    "File additionally receiving every log record as one JSON object per line.",
)
register(
    "REPRO_TRACE",
    "bool",
    "0",
    "Enable span tracing (`1`/`true`/`yes`/`on`); same effect as the CLI `--trace` flag.",
)
register(
    "REPRO_RUN_DIR",
    "path",
    "runs",
    "Directory receiving run manifests (`<timestamp>-<experiment>.json`).",
)
register(
    "REPRO_HISTORY",
    "path",
    "runs/history.jsonl",
    "Append-only JSONL store of benchmark-trajectory entries.",
)
register(
    "REPRO_WORKERS",
    "int",
    "1",
    "Default worker count for parallel sweeps; non-integers warn and fall back to serial.",
)
register(
    "REPRO_EXECUTOR",
    "enum",
    "process",
    "Executor kind used when more than one worker is requested.",
    choices=("serial", "thread", "process"),
)
register(
    "REPRO_FULL",
    "bool",
    "0",
    "Run experiments at the paper-scale budgets instead of the quick ones.",
)
register(
    "REPRO_DTYPE",
    "enum",
    "float64",
    "Floating dtype of the deterministic data path (nn / xbar / quant). "
    "`float32` halves memory traffic at ~1e-6 relative accuracy cost; "
    "float64 keeps every equivalence test bit-exact.",
    choices=("float64", "float32"),
)
register(
    "REPRO_SHM",
    "bool",
    "0",
    "Ship large arrays to process-pool workers via POSIX shared memory "
    "(zero-copy views) instead of pickling them into every task.",
)
register(
    "REPRO_TASK_TIMEOUT",
    "float",
    None,
    "Resilient-map stall timeout in seconds: if no task completes within this "
    "window the pool is declared hung, rebuilt, and the unfinished tasks "
    "resubmitted. Unset = wait forever.",
)
register(
    "REPRO_TELEMETRY",
    "bool",
    "0",
    "Start the live-telemetry layer for the run: a background sampler "
    "appending to `runs/<run>-telemetry.jsonl` plus the OpenMetrics "
    "exposition endpoint on `REPRO_TELEMETRY_PORT`.",
)
register(
    "REPRO_TELEMETRY_PORT",
    "int",
    "9464",
    "TCP port of the OpenMetrics exposition endpoint (`/metrics`) and the "
    "HTML run dashboard (`/`); `0` picks a free ephemeral port.",
)
register(
    "REPRO_TELEMETRY_INTERVAL",
    "float",
    "1.0",
    "Seconds between telemetry samples (process RSS/CPU, queue depth, "
    "cache hit rates, campaign progress) written to the telemetry ring.",
)
register(
    "REPRO_ERRORBUDGET_TRIALS",
    "int",
    None,
    "Monte-Carlo trials per error-budget variant (`python -m repro "
    "errorbudget`). Unset = the scale's noise-trial budget; the CLI "
    "`--trials` flag overrides both.",
)
register(
    "REPRO_TASK_RETRIES",
    "int",
    "2",
    "Re-execution budget per task in a resilient map before it degrades to "
    "the in-parent serial fallback.",
)
register(
    "REPRO_SERVE_MAX_BATCH",
    "int",
    "64",
    "Serving micro-batcher: maximum total samples fused into one "
    "`forward_trials` call. Requests are concatenated until this cap or "
    "`REPRO_SERVE_MAX_DELAY_MS` is hit, whichever comes first.",
)
register(
    "REPRO_SERVE_MAX_DELAY_MS",
    "float",
    "2.0",
    "Serving micro-batcher: milliseconds to hold an open batch waiting for "
    "more requests before dispatching it. `0` dispatches whatever is queued "
    "immediately.",
)
register(
    "REPRO_SERVE_QUEUE_LIMIT",
    "int",
    "256",
    "Serving overload shed: requests queued beyond this limit are rejected "
    "immediately (HTTP 503) instead of growing the queue without bound.",
)
register(
    "REPRO_SERVE_DEADLINE_MS",
    "float",
    None,
    "Serving per-request deadline in milliseconds: requests still queued "
    "past it are failed (HTTP 504) rather than served stale. Unset = no "
    "deadline.",
)
register(
    "REPRO_SERVE_PORT",
    "int",
    "9600",
    "TCP port of the inference service (`python -m repro serve`); `0` picks "
    "a free ephemeral port.",
)
register(
    "REPRO_SANITIZE",
    "bool",
    "0",
    "Arm the runtime sanitizer (`repro.sanitize`): NaN/Inf guards on the "
    "trainer and the DAC->crossbar->ADC path, physical-range checks on "
    "programmed conductances, read-only enforcement on SHM-fanned arrays "
    "and a shared-Generator race detector. Findings surface on the "
    "`sanitize_findings` counter and the structured log.",
)
