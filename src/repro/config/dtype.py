"""The ``REPRO_DTYPE`` knob: one floating dtype for the data path.

The numeric substrate (``repro.nn``, ``repro.xbar``, ``repro.quant``)
runs in float64 by default — every equivalence test in the repository
asserts bit-identical float64 results across serial/vectorized paths.
``REPRO_DTYPE=float32`` opts the deterministic data path into single
precision, halving memory traffic for large sweeps at a documented
accuracy cost (~1e-6 relative; see ``docs/performance.md``).

Monte-Carlo noise draws stay float64 (the RNG streams are part of the
reproducibility contract), so noisy inference upcasts; the training,
mapping and ideal-inference paths honour the knob end to end.

The resolved dtype is cached per process: the knob is read once, on
first use.  Tests override with :func:`set_active_dtype` (or reset
with ``None`` to re-read the environment).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.config import knobs

__all__ = [
    "DTYPE_ENV",
    "DTYPE_NAMES",
    "active_dtype",
    "astype",
    "resolve_dtype",
    "set_active_dtype",
]

DTYPE_ENV = "REPRO_DTYPE"
"""Environment variable selecting the data-path floating dtype."""

DTYPE_NAMES = ("float64", "float32")
"""Legal ``REPRO_DTYPE`` values (float64 is the bit-exact default)."""

_active: Optional[np.dtype] = None


def resolve_dtype() -> np.dtype:
    """Read ``REPRO_DTYPE`` from the environment (uncached)."""
    raw = (knobs.get_str(DTYPE_ENV) or "float64").lower()
    if raw not in DTYPE_NAMES:
        raise ValueError(
            f"unknown {DTYPE_ENV} value {raw!r}; use one of {', '.join(DTYPE_NAMES)}"
        )
    return np.dtype(raw)


def active_dtype() -> np.dtype:
    """The process-wide data-path dtype (resolved once, then cached)."""
    global _active
    if _active is None:
        _active = resolve_dtype()
    return _active


def set_active_dtype(dtype: Union[str, np.dtype, None]) -> None:
    """Override the cached dtype; ``None`` re-reads the knob lazily."""
    global _active
    if dtype is None:
        _active = None
        return
    resolved = np.dtype(dtype)
    if resolved.name not in DTYPE_NAMES:
        raise ValueError(
            f"unsupported data-path dtype {resolved.name!r}; "
            f"use one of {', '.join(DTYPE_NAMES)}"
        )
    _active = resolved


def astype(x: object) -> np.ndarray:
    """``np.asarray`` at the active dtype (no copy when already right).

    This is the single conversion helper behind the former scattered
    ``np.asarray(x, dtype=float)`` call sites; ``repro.nn`` re-exports
    it as ``_astype``.
    """
    return np.asarray(x, dtype=active_dtype())
