"""Central configuration: the ``REPRO_*`` environment-knob registry.

Every environment variable the pipeline reads is declared once in
:mod:`repro.config.knobs` — name, type, default and documentation —
and read through its typed accessors.  ``repro-lint`` rule RPR003
enforces that no other module touches ``os.environ`` directly, so the
registry (and the knob table it renders into the docs) is guaranteed
to be complete.
"""

from repro.config.knobs import (
    TRUTHY,
    Knob,
    UnknownKnobError,
    all_knobs,
    docs_table,
    get_bool,
    get_int,
    get_path,
    get_raw,
    get_str,
    knob,
    snapshot,
    unregistered,
)

__all__ = [
    "TRUTHY",
    "Knob",
    "UnknownKnobError",
    "all_knobs",
    "docs_table",
    "get_bool",
    "get_int",
    "get_path",
    "get_raw",
    "get_str",
    "knob",
    "snapshot",
    "unregistered",
]
