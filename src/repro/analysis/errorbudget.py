"""Error-budget attribution: which interface stage loses the accuracy?

The paper's central claim is that accuracy in an RRAM mixed-signal
system is a *budget* spent across the interface stages — input bit
encoding (``B_I``), weight-to-conductance mapping, process variation,
signal fluctuation, IR drop, comparator offset and output truncation
(``B_O``) — and that MEI/SAAB rebalance that budget.  This module turns
the claim into an instrument.

**Counterfactual attribution** (the headline number): starting from the
fully *real* deployment, each stage in turn is swapped for its ideal
version while every other stage stays real, and the end-to-end error is
re-measured under paired seeds.  The accuracy the swap recovers,

    delta_i = err(real) - err(real with stage i idealized),

is the budget line attributed to stage ``i``.

**Leave-one-in** (the robustness cross-check): starting from the fully
*ideal* pipeline, each stage alone is made real;
``err(ideal with stage i real) - err(ideal)`` measures the stage's
damage in isolation.  When the two views disagree, stages interact.

**Additivity residual**: stage effects do not add exactly (a comparator
flips a bit only when mapping error has pushed the level near the
threshold), so the report always carries

    residual = [err(real) - err(ideal)] - sum_i delta_i

rather than hiding interaction terms inside the per-stage lines.  A
residual comparable to the largest delta means the decomposition should
be read qualitatively.

Paired seeds: all variants share one base seed, so per-trial noise
generators are identical across variants and the measured deltas are
differences of matched Monte-Carlo draws, not of independent noise.
The pairing is exact in generators; for the two stages that change how
many draws a generator serves (signal fluctuation, process variation),
the surviving source's draw *positions* shift, so those two lines carry
slightly more Monte-Carlo noise — another reason the residual is
reported instead of assumed zero.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analog.periphery import Comparator
from repro.core.mei import MEI
from repro.core.saab import SAAB
from repro.device.variation import NonIdealFactors
from repro.metrics.signal import bit_error_rate, snr_db, weighted_bit_error
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.xbar.mapping import MappingConfig

__all__ = [
    "STAGES",
    "StageKnobs",
    "ErrorBudgetConfig",
    "StageAttribution",
    "ErrorBudgetResult",
    "attribute_error",
    "publish_metrics",
]

STAGES: Tuple[str, ...] = (
    "input_codec",
    "mapping",
    "pv",
    "signal_fluctuation",
    "ir_drop",
    "comparator_offset",
    "output_truncation",
)
"""Attributable pipeline stages, in signal-flow order."""

# Which knob realizes each stage (see StageKnobs).
_STAGE_FIELDS: Dict[str, str] = {
    "input_codec": "in_bits",
    "mapping": "exact_mapping",
    "pv": "sigma_pv",
    "signal_fluctuation": "sigma_sf",
    "ir_drop": "wire_resistance",
    "comparator_offset": "comparator_offset",
    "output_truncation": "out_bits",
}


@dataclass(frozen=True)
class StageKnobs:
    """One full setting of every attributable stage.

    The real deployment and the all-ideal pipeline are both points in
    this knob space; a counterfactual takes the real point and moves
    exactly one coordinate to its ideal value (and leave-one-in the
    converse).
    """

    in_bits: int
    out_bits: int
    exact_mapping: bool
    sigma_pv: float
    sigma_sf: float
    comparator_offset: float
    wire_resistance: float

    def substituting(self, stage: str, source: "StageKnobs") -> "StageKnobs":
        """Copy with ``stage``'s knob taken from ``source``."""
        name = _STAGE_FIELDS[stage]
        return dataclasses.replace(self, **{name: getattr(source, name)})


@dataclass(frozen=True)
class ErrorBudgetConfig:
    """Non-ideality levels defining the "real" deployment under study.

    Defaults follow the repo's robustness anchor points: ``sigma_pv``
    matches the Table-1 robustness column
    (:data:`repro.experiments.table1.ROBUSTNESS_SIGMA_PV`),
    ``wire_resistance`` is the 90 nm per-segment value
    (:func:`repro.xbar.ir_drop.wire_resistance_for_node`).  MEI's
    digital inputs regenerate through the logic threshold, so the
    ``signal_fluctuation`` line is expected near zero — that is the
    paper's Sec. 5.3 point, measured rather than asserted.
    """

    sigma_pv: float = 0.1
    sigma_sf: float = 0.05
    comparator_offset: float = 0.05
    wire_resistance: float = 2.0  # wire_resistance_for_node(90)
    trials: int = 5
    seed: int = 0
    stages: Tuple[str, ...] = STAGES

    def __post_init__(self) -> None:
        for name in ("sigma_pv", "sigma_sf", "comparator_offset", "wire_resistance"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        unknown = set(self.stages) - set(STAGES)
        if unknown:
            raise ValueError(f"unknown stages: {sorted(unknown)}; known: {STAGES}")


@dataclass(frozen=True)
class StageAttribution:
    """One stage's budget line."""

    stage: str
    delta: float
    """Counterfactual attribution: error recovered by idealizing this
    stage alone (positive = the stage costs accuracy)."""
    counterfactual_error: float
    leave_one_in_error: float
    leave_one_in_delta: float
    """Damage this stage does alone on an otherwise ideal pipeline."""

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ErrorBudgetResult:
    """Full attribution for one deployed system on one benchmark."""

    benchmark: str
    err_real: float
    err_ideal: float
    total_gap: float
    residual: float
    stages: Tuple[StageAttribution, ...]
    bit_plane_rates: Tuple[float, ...]
    """Per-bit-plane error rate of the real deployment, MSB first —
    the Eq. 5 view of where the bit damage lands."""
    weighted_bit_error: float
    snr_db: float
    """SNR of the real decoded outputs against the ideal ones."""
    trials: int
    seed: int
    knobs: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["name"] = self.benchmark
        out["stages"] = [s.as_dict() for s in self.stages]
        return out

    def metrics(self) -> Dict[str, float]:
        """Flat history metrics (``errorbudget.<bench>.*``)."""
        prefix = f"errorbudget.{self.benchmark}"
        out: Dict[str, float] = {
            f"{prefix}.err_real": self.err_real,
            f"{prefix}.err_ideal": self.err_ideal,
            f"{prefix}.total_gap": self.total_gap,
            f"{prefix}.residual": self.residual,
            f"{prefix}.weighted_bit_error": self.weighted_bit_error,
            f"{prefix}.snr_db": self.snr_db,
        }
        for stage in self.stages:
            out[f"{prefix}.stage.{stage.stage}.delta"] = stage.delta
            out[f"{prefix}.stage.{stage.stage}.leave_one_in"] = stage.leave_one_in_delta
        for k, rate in enumerate(self.bit_plane_rates):
            out[f"{prefix}.bitplane.bit{k}"] = rate
        return out


def _first_learner(system: Union[MEI, SAAB]) -> MEI:
    if isinstance(system, SAAB):
        learner = system.learners[0]
        if not isinstance(learner, MEI):
            raise TypeError(
                f"error budget requires MEI learners, got {type(learner).__name__}"
            )
        return learner
    return system


def _mei_variant(mei: MEI, knobs: StageKnobs, seed: int) -> MEI:
    """One learner redeployed at a knob point, with paired periphery."""
    base = mei.mapping_config if mei.mapping_config is not None else MappingConfig()
    mapping = (
        base
        if base.wire_resistance == knobs.wire_resistance
        else dataclasses.replace(base, wire_resistance=knobs.wire_resistance)
    )
    # Same seed at every knob point -> identical offset streams, so the
    # comparator line is measured against matched draws.
    comparator = Comparator(offset_sigma=knobs.comparator_offset, seed=seed)
    return mei.deploy_variant(
        in_bits=knobs.in_bits,
        out_bits=knobs.out_bits,
        mapping_config=mapping,
        exact_mapping=knobs.exact_mapping,
        comparator=comparator,
    )


def _variant(system: Union[MEI, SAAB], knobs: StageKnobs, seed: int) -> Union[MEI, SAAB]:
    if isinstance(system, SAAB):
        # Distinct (but knob-independent) comparator seed per learner:
        # hardware comparators are independent instances, and reusing
        # one stream across learners would correlate their flips.
        counter = itertools.count()
        return system.remapped(
            lambda learner: _mei_variant(learner, knobs, seed + 7919 * next(counter))
        )
    return _mei_variant(system, knobs, seed)


def _measure(
    variant: Union[MEI, SAAB],
    x: np.ndarray,
    y: np.ndarray,
    error_fn: Callable[[np.ndarray, np.ndarray], float],
    knobs: StageKnobs,
    seed: int,
    trials: int,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Mean error over paired trials; also the bit and decoded stacks.

    One prediction pass per variant: the instance-owned comparator
    generator is consumed exactly once, so a variant's measurement is a
    pure function of (variant, seed, trials).
    """
    noise = NonIdealFactors(sigma_pv=knobs.sigma_pv, sigma_sf=knobs.sigma_sf, seed=seed)
    bits = variant.predict_bits_trials(x, noise, trials)
    decoded = _first_learner(variant).decode_outputs(bits)
    errors = [error_fn(decoded[t], y) for t in range(decoded.shape[0])]
    return float(np.mean(errors)), bits, decoded


def attribute_error(
    system: Union[MEI, SAAB],
    x: np.ndarray,
    y: np.ndarray,
    error_fn: Callable[[np.ndarray, np.ndarray], float],
    config: Optional[ErrorBudgetConfig] = None,
    benchmark: str = "bench",
) -> ErrorBudgetResult:
    """Decompose a deployed system's accuracy gap across its stages.

    Parameters
    ----------
    system:
        A trained :class:`~repro.core.mei.MEI` or a
        :class:`~repro.core.saab.SAAB` ensemble of MEI learners.  Its
        current pruning masks define the real ``in_bits``/``out_bits``.
    x, y:
        Evaluation set in unit-interval application values.
    error_fn:
        ``(predicted_unit, target_unit) -> float`` application error
        (e.g. ``Benchmark.error_normalized``).
    config:
        Non-ideality levels of the real deployment; defaults to
        :class:`ErrorBudgetConfig`.
    """
    config = config if config is not None else ErrorBudgetConfig()
    first = _first_learner(system)
    bits = first.bits
    real = StageKnobs(
        in_bits=first.in_bits,
        out_bits=first.out_bits,
        exact_mapping=False,
        sigma_pv=config.sigma_pv,
        sigma_sf=config.sigma_sf,
        comparator_offset=config.comparator_offset,
        wire_resistance=config.wire_resistance,
    )
    ideal = StageKnobs(
        in_bits=bits,
        out_bits=bits,
        exact_mapping=True,
        sigma_pv=0.0,
        sigma_sf=0.0,
        comparator_offset=0.0,
        wire_resistance=0.0,
    )
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float)
    seed, trials = config.seed, config.trials

    with span(
        "errorbudget_attribution",
        benchmark=benchmark,
        stages=list(config.stages),
        trials=trials,
    ) as sp:
        err_real, real_bits, real_decoded = _measure(
            _variant(system, real, seed), x, y, error_fn, real, seed, trials
        )
        err_ideal, _, ideal_decoded = _measure(
            _variant(system, ideal, seed), x, y, error_fn, ideal, seed, trials
        )
        total_gap = err_real - err_ideal

        rows: List[StageAttribution] = []
        for stage in config.stages:
            counterfactual = real.substituting(stage, ideal)
            err_cf, _, _ = _measure(
                _variant(system, counterfactual, seed),
                x, y, error_fn, counterfactual, seed, trials,
            )
            leave_one_in = ideal.substituting(stage, real)
            err_loi, _, _ = _measure(
                _variant(system, leave_one_in, seed),
                x, y, error_fn, leave_one_in, seed, trials,
            )
            rows.append(
                StageAttribution(
                    stage=stage,
                    delta=err_real - err_cf,
                    counterfactual_error=err_cf,
                    leave_one_in_error=err_loi,
                    leave_one_in_delta=err_loi - err_ideal,
                )
            )
        residual = total_gap - sum(row.delta for row in rows)

        # Bit-plane view of the real deployment: targets are the
        # *unmasked* encoded references, so output truncation shows up
        # as LSB-plane error instead of being defined away.
        target_bits = first.encode_targets(y)
        plane_rates = bit_error_rate(real_bits, target_bits, bits=bits)
        weighted = weighted_bit_error(plane_rates, decay=first.config.weight_decay_ratio)
        snr = snr_db(ideal_decoded, real_decoded)
        sp.set(total_gap=total_gap, residual=residual)

    return ErrorBudgetResult(
        benchmark=benchmark,
        err_real=err_real,
        err_ideal=err_ideal,
        total_gap=total_gap,
        residual=residual,
        stages=tuple(rows),
        bit_plane_rates=tuple(float(r) for r in plane_rates),
        weighted_bit_error=weighted,
        snr_db=snr,
        trials=trials,
        seed=seed,
        knobs=dataclasses.asdict(real),
    )


def publish_metrics(result: ErrorBudgetResult) -> None:
    """Expose one result through the process-wide metrics registry.

    Gauge families (``error_budget_<bench>_*``) feed the OpenMetrics
    exposition and the dashboard; the two histograms aggregate stage
    deltas and bit-plane rates across benchmarks for the registry's
    quantile views.
    """
    prefix = f"error_budget_{result.benchmark}"
    obs_metrics.gauge(f"{prefix}_err_real").set(result.err_real)
    obs_metrics.gauge(f"{prefix}_err_ideal").set(result.err_ideal)
    obs_metrics.gauge(f"{prefix}_total_gap").set(result.total_gap)
    obs_metrics.gauge(f"{prefix}_residual").set(result.residual)
    for stage in result.stages:
        obs_metrics.gauge(f"{prefix}_{stage.stage}_delta").set(stage.delta)
        obs_metrics.histogram("error_budget_stage_delta").observe(stage.delta)
    for k, rate in enumerate(result.bit_plane_rates):
        obs_metrics.gauge(f"{prefix}_bitplane_{k}_error_rate").set(rate)
        obs_metrics.histogram("error_budget_bitplane_error_rate").observe(rate)
