"""Post-hoc analyses over deployed systems (error-budget attribution)."""

from repro.analysis.errorbudget import (
    STAGES,
    ErrorBudgetConfig,
    ErrorBudgetResult,
    StageAttribution,
    StageKnobs,
    attribute_error,
    publish_metrics,
)

__all__ = [
    "STAGES",
    "ErrorBudgetConfig",
    "ErrorBudgetResult",
    "StageAttribution",
    "StageKnobs",
    "attribute_error",
    "publish_metrics",
]
