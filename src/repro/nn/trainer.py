"""Training loop with minibatching, early stopping and history.

The trainer solves the optimization problems of Eq. (4)/(5) by
minibatch gradient descent.  It is deliberately plain: the interesting
training behaviour (MSB weighting, SAAB resampling) lives in the loss
and dataset layers, keeping this loop reusable across every experiment.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config.dtype import astype as _astype
from repro.nn.datasets import minibatches
from repro.nn.losses import Loss, WeightedMSE
from repro.nn.network import MLP
from repro.nn.optimizers import Optimizer
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.sanitize import guards as sanitize_guards

__all__ = ["TrainConfig", "TrainResult", "Trainer"]

_log = get_logger("nn.trainer")


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for one training run."""

    epochs: int = 200
    batch_size: int = 64
    learning_rate: float = 0.01
    optimizer: str = "adam"
    patience: int = 0
    """Early-stopping patience in epochs on validation loss; 0 disables."""
    min_delta: float = 1e-6
    """Minimum validation improvement that resets patience."""
    shuffle_seed: Optional[int] = None
    lr_decay: float = 1.0
    """Multiply the learning rate by this factor every ``lr_decay_every``
    epochs (1.0 disables the schedule)."""
    lr_decay_every: int = 0
    weight_noise_sigma: float = 0.0
    """Variation-aware training: perturb the weights with multiplicative
    lognormal noise of this sigma on every minibatch (gradients are
    computed at the perturbed point and applied to the clean weights),
    hardening the network against the process variation its crossbar
    deployment will suffer.  0 disables."""
    l2: float = 0.0
    """L2 weight-decay coefficient added to the weight gradients (biases
    are not decayed).  Small weights also map onto a narrower
    conductance range, easing crossbar programming.  0 disables."""
    track_train_loss: bool = True
    """Record the full-dataset training loss each logged epoch.  The
    extra full forward pass is pure bookkeeping — sweep-heavy callers
    (DSE candidate ladders, SAAB rounds) that never read the history
    should disable it.  Training results are unchanged either way."""
    log_every: int = 1
    """Record the training loss every this many epochs (the final epoch
    is always recorded).  Only consulted when ``track_train_loss``."""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.patience < 0:
            raise ValueError(f"patience must be >= 0, got {self.patience}")
        if self.lr_decay <= 0 or self.lr_decay > 1:
            raise ValueError(f"lr_decay must be in (0, 1], got {self.lr_decay}")
        if self.lr_decay_every < 0:
            raise ValueError(f"lr_decay_every must be >= 0, got {self.lr_decay_every}")
        if self.weight_noise_sigma < 0:
            raise ValueError(
                f"weight_noise_sigma must be >= 0, got {self.weight_noise_sigma}"
            )
        if self.l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {self.l2}")
        if self.log_every < 1:
            raise ValueError(f"log_every must be >= 1, got {self.log_every}")


@dataclass
class TrainResult:
    """History of a training run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    epoch_seconds: List[float] = field(default_factory=list)
    """Wall time of each epoch run (always populated; one entry per
    epoch, including a partial early-stopped final epoch)."""

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    @property
    def final_val_loss(self) -> float:
        return self.val_losses[-1] if self.val_losses else float("nan")

    @property
    def total_seconds(self) -> float:
        """Total training wall time across all epochs run."""
        return float(sum(self.epoch_seconds))


class Trainer:
    """Minibatch gradient-descent trainer for :class:`MLP`.

    Parameters
    ----------
    loss:
        Loss object; defaults to uniform :class:`WeightedMSE` (Eq. 4).
    config:
        Hyper-parameters; defaults are sized for the paper's small nets.
    """

    def __init__(self, loss: Optional[Loss] = None, config: Optional[TrainConfig] = None):
        self.loss = loss if loss is not None else WeightedMSE()
        self.config = config if config is not None else TrainConfig()

    def _make_optimizer(self) -> Optimizer:
        from repro.nn.optimizers import get_optimizer

        return get_optimizer(self.config.optimizer, learning_rate=self.config.learning_rate)

    def fit(
        self,
        model: MLP,
        x: np.ndarray,
        y: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        sample_weights: Optional[np.ndarray] = None,
    ) -> TrainResult:
        """Train ``model`` in place and return the loss history."""
        x = _astype(x)
        y = _astype(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x and y lengths differ: {x.shape[0]} vs {y.shape[0]}")
        if x.shape[1] != model.in_dim:
            raise ValueError(f"x has {x.shape[1]} features, model expects {model.in_dim}")
        if y.shape[1] != model.out_dim:
            raise ValueError(f"y has {y.shape[1]} ports, model expects {model.out_dim}")
        if sample_weights is not None:
            sample_weights = _astype(sample_weights)
            if sample_weights.shape[0] != x.shape[0]:
                raise ValueError("sample_weights length mismatch")

        optimizer = self._make_optimizer()
        rng = np.random.default_rng(self.config.shuffle_seed)
        result = TrainResult()
        best_val = float("inf")
        bad_epochs = 0
        best_layers = None
        debug = _log.isEnabledFor(logging.DEBUG)

        with span(
            "train",
            epochs=self.config.epochs,
            samples=int(x.shape[0]),
            layers=list(model.layer_sizes),
        ) as sp:
            for epoch in range(self.config.epochs):
                epoch_start = time.perf_counter()
                if (
                    self.config.lr_decay_every
                    and epoch
                    and epoch % self.config.lr_decay_every == 0
                ):
                    optimizer.learning_rate *= self.config.lr_decay
                for xb, yb, wb in minibatches(x, y, self.config.batch_size, rng, sample_weights):
                    clean_weights = None
                    if self.config.weight_noise_sigma > 0:
                        clean_weights = [layer.weights.copy() for layer in model.layers]
                        for layer in model.layers:
                            layer.weights *= rng.lognormal(
                                0.0, self.config.weight_noise_sigma, layer.weights.shape
                            )
                    pred = model.forward(xb, train=True)
                    grad = self.loss.gradient(pred, yb, wb)
                    sanitize_guards.check_finite("trainer", "loss_gradient", grad)
                    model.backward(grad)
                    if clean_weights is not None:
                        # Apply the perturbed-point gradients to the clean
                        # weights (standard noise-injection training).
                        for layer, weights in zip(model.layers, clean_weights):
                            layer.weights[...] = weights
                    if self.config.l2 > 0:
                        for layer in model.layers:
                            layer.grad_weights += self.config.l2 * layer.weights
                    optimizer.step(model.layers)

                if self.config.track_train_loss and (
                    (epoch + 1) % self.config.log_every == 0
                    or epoch + 1 == self.config.epochs
                ):
                    result.train_losses.append(
                        self.loss.value(model.predict(x), y, sample_weights)
                    )
                result.epochs_run = epoch + 1

                stop = False
                if x_val is not None and y_val is not None:
                    val = self.loss.value(model.predict(x_val), _astype(y_val))
                    result.val_losses.append(val)
                    if self.config.patience:
                        if val < best_val - self.config.min_delta:
                            best_val = val
                            bad_epochs = 0
                            best_layers = [layer.copy() for layer in model.layers]
                        else:
                            bad_epochs += 1
                            if bad_epochs >= self.config.patience:
                                result.stopped_early = True
                                stop = True
                result.epoch_seconds.append(time.perf_counter() - epoch_start)
                if debug and (
                    (epoch + 1) % max(1, self.config.log_every) == 0
                    or epoch + 1 == self.config.epochs
                ):
                    _log.debug(
                        "epoch done",
                        extra={
                            "fields": {
                                "epoch": epoch + 1,
                                "train_loss": result.train_losses[-1]
                                if result.train_losses
                                else None,
                                "val_loss": result.val_losses[-1]
                                if result.val_losses
                                else None,
                                "seconds": round(result.epoch_seconds[-1], 6),
                            }
                        },
                    )
                if stop:
                    break

            sp.set(
                epochs_run=result.epochs_run,
                stopped_early=result.stopped_early,
                final_train_loss=float(result.final_train_loss),
                total_seconds=round(result.total_seconds, 6),
                epoch_seconds=[round(s, 6) for s in result.epoch_seconds],
            )

        obs_metrics.counter("train_runs").inc()
        obs_metrics.counter("train_epochs").inc(result.epochs_run)
        obs_metrics.histogram("train_epoch_seconds").observe_many(result.epoch_seconds)
        if result.stopped_early and best_layers is not None:
            model.layers = best_layers
        return result
