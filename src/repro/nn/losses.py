"""Loss functions, including the MSB-weighted MSE of Eq. (5).

The paper trains RCS networks by minimizing

    sum_n sum_p [ w_p * (t_p(n) - o_p(n)) ]**2        (Eq. 5)

where ``w_p`` is a per-output-port weight.  With ``w_p = 1`` this is
the ordinary sum-of-squares loss of Eq. (4); for MEI the weights decay
exponentially from the MSB port to the LSB port so that MSB errors
dominate the gradient.

Losses also accept per-sample weights, which SAAB (Algorithm 1) uses
when training a learner on the reweighted sample distribution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config.dtype import active_dtype
from repro.config.dtype import astype as _astype

__all__ = ["Loss", "WeightedMSE", "mse"]


def mse(predicted: np.ndarray, target: np.ndarray) -> float:
    """Plain mean squared error over all samples and ports."""
    predicted = _astype(predicted)
    target = _astype(target)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    return float(np.mean((predicted - target) ** 2))


class Loss:
    """Base class: value and gradient with respect to predictions."""

    def value(
        self,
        predicted: np.ndarray,
        target: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> float:
        raise NotImplementedError

    def gradient(
        self,
        predicted: np.ndarray,
        target: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        raise NotImplementedError


class WeightedMSE(Loss):
    """Port-weighted mean squared error (Eq. 5).

    Parameters
    ----------
    port_weights:
        Weights ``w_p`` per output port; ``None`` means uniform (Eq. 4).
        Stored squared internally since the loss uses ``(w_p * e_p)**2``.
    """

    def __init__(self, port_weights: Optional[np.ndarray] = None):
        if port_weights is not None:
            port_weights = _astype(port_weights)
            if port_weights.ndim != 1:
                raise ValueError("port_weights must be a 1-D array")
            if np.any(port_weights < 0):
                raise ValueError("port_weights must be non-negative")
        self.port_weights = port_weights

    def _sq_weights(self, n_ports: int) -> np.ndarray:
        if self.port_weights is None:
            return np.ones(n_ports, dtype=active_dtype())
        if self.port_weights.shape[0] != n_ports:
            raise ValueError(
                f"loss has {self.port_weights.shape[0]} port weights "
                f"but predictions have {n_ports} ports"
            )
        return self.port_weights**2

    @staticmethod
    def _check(predicted: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        predicted = _astype(predicted)
        target = _astype(target)
        if predicted.shape != target.shape:
            raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
        if predicted.ndim != 2:
            raise ValueError("expected (n_samples, n_ports) arrays")
        return predicted, target

    def value(
        self,
        predicted: np.ndarray,
        target: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> float:
        predicted, target = self._check(predicted, target)
        sq = self._sq_weights(predicted.shape[1])
        per_sample = ((predicted - target) ** 2) @ sq
        if sample_weights is not None:
            per_sample = per_sample * _astype(sample_weights)
        return float(np.mean(per_sample))

    def gradient(
        self,
        predicted: np.ndarray,
        target: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        predicted, target = self._check(predicted, target)
        sq = self._sq_weights(predicted.shape[1])
        grad = 2.0 * (predicted - target) * sq / predicted.shape[0]
        if sample_weights is not None:
            grad = grad * _astype(sample_weights)[:, None]
        return grad
