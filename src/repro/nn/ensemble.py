"""Batched ensemble training: K members, one stacked matmul per layer.

SAAB sweeps, seed-repeat studies and DSE candidate ladders all train
*independent* MLPs of identical topology — historically with a Python
loop over members, paying K trips through the interpreter per
minibatch.  This module stacks the members' parameters into
``(K, in, out)`` arrays and drives the whole ensemble through each
forward/backprop step with one batched :func:`numpy.matmul` per layer.

Bit-identity contract (the same invariant the Monte-Carlo
vectorization of ``docs/performance.md`` relies on): a stacked
``(K, b, i) @ (K, i, o)`` matmul performs the same per-slice dgemm the
2-D member loop would, the optimizer updates are elementwise, and each
member consumes its *own* shuffle generator exactly as
:class:`repro.nn.trainer.Trainer` does (one permutation per epoch).
Training K members batched therefore produces float64 weights **bit
identical** to K serial :meth:`Trainer.fit` calls with matching seeds
— asserted by ``tests/test_nn_ensemble.py`` and the Hypothesis
property suite.

Boosting itself cannot be batched (each SAAB round's sample weights
depend on the previous round's error); what this buys is the *within
round* / *across sweep* parallelism: training many learners on
differently-weighted copies of the same data at once.

Unsupported (``ValueError``): ``patience`` (early stopping branches
per member) and ``weight_noise_sigma`` (would interleave RNG streams);
use the serial trainer for those.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, cast

import numpy as np

from repro.config.dtype import astype as _astype
from repro.nn.layers import DenseLayer
from repro.nn.losses import Loss, WeightedMSE
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, TrainResult
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sanitize import guards as sanitize_guards

__all__ = ["EnsembleTrainer", "train_ensemble"]


class _StackedLayer:
    """One layer of the whole ensemble: member axis first.

    Exposes the same ``params()``/``grads()`` surface as
    :class:`DenseLayer`, so the *unmodified* optimizer implementations
    update the stacked arrays — their math is elementwise, hence
    per-member identical to the serial path by construction.
    """

    __slots__ = ("weights", "bias", "activation", "grad_weights", "grad_bias",
                 "_x", "_pre")

    def __init__(self, weights: np.ndarray, bias: np.ndarray, activation) -> None:
        self.weights = weights  # (K, in, out)
        self.bias = bias  # (K, out)
        self.activation = activation
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None

    def params(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"weights": self.grad_weights, "bias": self.grad_bias}


def _stack_models(models: Sequence[MLP]) -> List[_StackedLayer]:
    first = models[0]
    for model in models[1:]:
        if model.layer_sizes != first.layer_sizes:
            raise ValueError(
                f"ensemble members must share a topology: "
                f"{model.layer_sizes} vs {first.layer_sizes}"
            )
        for layer, ref in zip(model.layers, first.layers):
            if type(layer.activation) is not type(ref.activation):
                raise ValueError("ensemble members must share activations per layer")
    stacked = []
    for index, ref in enumerate(first.layers):
        weights = np.stack([m.layers[index].weights for m in models])
        bias = np.stack([m.layers[index].bias for m in models])
        stacked.append(_StackedLayer(weights, bias, type(ref.activation)()))
    return stacked


def _unstack_into(models: Sequence[MLP], stacks: Sequence[_StackedLayer]) -> None:
    for k, model in enumerate(models):
        for layer, stacked in zip(model.layers, stacks):
            layer.weights = stacked.weights[k].copy()
            layer.bias = stacked.bias[k].copy()


def _forward(stacks: Sequence[_StackedLayer], x: np.ndarray,
             train: bool = False) -> np.ndarray:
    """Ensemble forward; ``x`` is ``(K, b, in)`` or a shared ``(b, in)``."""
    out = x
    for layer in stacks:
        pre = np.matmul(out, layer.weights) + layer.bias[:, None, :]
        if train:
            layer._x = out
            layer._pre = pre
        out = layer.activation.forward(pre)
    return out


def _backward(stacks: Sequence[_StackedLayer], grad: np.ndarray) -> None:
    for layer in reversed(stacks):
        if layer._x is None or layer._pre is None:
            raise RuntimeError("_backward() called before _forward(train=True)")
        delta = grad * layer.activation.backward(layer._pre)
        x = layer._x
        if x.ndim == 2:  # shared input broadcast across members
            x = np.broadcast_to(x, (delta.shape[0],) + x.shape)
        layer.grad_weights = np.matmul(x.transpose(0, 2, 1), delta)
        layer.grad_bias = delta.sum(axis=1)
        grad = np.matmul(delta, layer.weights.transpose(0, 2, 1))


class EnsembleTrainer:
    """Train K same-topology MLPs in lockstep with batched linear algebra.

    Parameters
    ----------
    loss:
        A :class:`WeightedMSE` shared by all members (Eq. 4/5); the
        batched gradient needs its closed form, so other ``Loss``
        subclasses are rejected.
    config:
        Shared hyper-parameters (one :class:`TrainConfig` for the whole
        ensemble).  ``patience`` and ``weight_noise_sigma`` must be 0.
    """

    def __init__(self, loss: Optional[Loss] = None,
                 config: Optional[TrainConfig] = None):
        loss = loss if loss is not None else WeightedMSE()
        if not isinstance(loss, WeightedMSE):
            raise ValueError(
                "EnsembleTrainer batches the WeightedMSE closed form; got "
                f"{type(loss).__name__} (use the serial Trainer instead)"
            )
        self.loss = loss
        self.config = config if config is not None else TrainConfig()
        if self.config.patience:
            raise ValueError(
                "early stopping (patience > 0) branches per member and cannot "
                "be batched; use the serial Trainer"
            )
        if self.config.weight_noise_sigma > 0:
            raise ValueError(
                "weight_noise_sigma > 0 would interleave per-member RNG streams; "
                "use the serial Trainer"
            )

    def fit(
        self,
        models: Sequence[MLP],
        x: np.ndarray,
        y: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        sample_weights: Optional[np.ndarray] = None,
        shuffle_seeds: Optional[Sequence[Optional[int]]] = None,
    ) -> List[TrainResult]:
        """Train every member in place; return one history per member.

        ``sample_weights`` may be shared ``(n,)`` or per-member
        ``(K, n)`` (how SAAB would batch a round's reweighted
        learners); ``shuffle_seeds`` gives each member its own
        minibatch stream (default: ``config.shuffle_seed`` for all).
        ``epoch_seconds`` on every returned result holds the *shared*
        ensemble wall clock — the members train simultaneously.
        """
        models = list(models)
        if not models:
            raise ValueError("need at least one ensemble member")
        n_members = len(models)
        x = _astype(x)
        y = _astype(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x and y lengths differ: {x.shape[0]} vs {y.shape[0]}")
        if x.shape[1] != models[0].in_dim:
            raise ValueError(
                f"x has {x.shape[1]} features, model expects {models[0].in_dim}"
            )
        if y.shape[1] != models[0].out_dim:
            raise ValueError(
                f"y has {y.shape[1]} ports, model expects {models[0].out_dim}"
            )
        weights_stack = None
        if sample_weights is not None:
            sample_weights = _astype(sample_weights)
            if sample_weights.ndim == 1:
                weights_stack = np.broadcast_to(
                    sample_weights, (n_members, sample_weights.shape[0])
                )
            elif sample_weights.ndim == 2:
                weights_stack = sample_weights
            else:
                raise ValueError("sample_weights must be (n,) or (K, n)")
            if weights_stack.shape != (n_members, x.shape[0]):
                raise ValueError(
                    f"sample_weights shape {sample_weights.shape} does not match "
                    f"{n_members} members x {x.shape[0]} samples"
                )
        if shuffle_seeds is None:
            shuffle_seeds = [self.config.shuffle_seed] * n_members
        if len(shuffle_seeds) != n_members:
            raise ValueError(
                f"got {len(shuffle_seeds)} shuffle seeds for {n_members} members"
            )
        if x_val is not None and y_val is not None:
            x_val = _astype(x_val)
            y_val = _astype(y_val)

        stacks = _stack_models(models)
        from repro.nn.optimizers import get_optimizer

        optimizer = get_optimizer(
            self.config.optimizer, learning_rate=self.config.learning_rate
        )
        # Same consumption pattern as Trainer.fit: one generator per
        # member, one permutation drawn per epoch.
        rngs = [np.random.default_rng(seed) for seed in shuffle_seeds]
        results = [TrainResult() for _ in range(n_members)]
        n = x.shape[0]
        batch = self.config.batch_size
        member_rows = np.arange(n_members)[:, None]

        with span(
            "train_ensemble",
            members=n_members,
            epochs=self.config.epochs,
            samples=int(n),
            layers=list(models[0].layer_sizes),
        ) as sp:
            for epoch in range(self.config.epochs):
                epoch_start = time.perf_counter()
                if (
                    self.config.lr_decay_every
                    and epoch
                    and epoch % self.config.lr_decay_every == 0
                ):
                    optimizer.learning_rate *= self.config.lr_decay
                perms = np.stack([rng.permutation(n) for rng in rngs])
                for start in range(0, n, batch):
                    idx = perms[:, start : start + batch]  # (K, b)
                    xb = x[idx]
                    yb = y[idx]
                    wb = (
                        weights_stack[member_rows, idx]
                        if weights_stack is not None
                        else None
                    )
                    pred = _forward(stacks, xb, train=True)
                    grad = self._gradient(pred, yb, wb)
                    sanitize_guards.check_finite("ensemble", "loss_gradient", grad)
                    _backward(stacks, grad)
                    if self.config.l2 > 0:
                        for layer in stacks:
                            layer.grad_weights += self.config.l2 * layer.weights
                    optimizer.step(cast(List[DenseLayer], stacks))

                epoch_seconds = time.perf_counter() - epoch_start
                logged = (epoch + 1) % self.config.log_every == 0 or (
                    epoch + 1 == self.config.epochs
                )
                if self.config.track_train_loss and logged:
                    pred = _forward(stacks, x)
                    for k, result in enumerate(results):
                        wk = weights_stack[k] if weights_stack is not None else None
                        result.train_losses.append(self.loss.value(pred[k], y, wk))
                if x_val is not None and y_val is not None:
                    pred = _forward(stacks, x_val)
                    for k, result in enumerate(results):
                        result.val_losses.append(self.loss.value(pred[k], y_val))
                for result in results:
                    result.epochs_run = epoch + 1
                    result.epoch_seconds.append(epoch_seconds)

            sp.set(
                epochs_run=self.config.epochs,
                ensemble_seconds=round(float(sum(results[0].epoch_seconds)), 6),
            )

        _unstack_into(models, stacks)
        obs_metrics.counter("ensemble_train_runs").inc()
        obs_metrics.counter("ensemble_train_members").inc(n_members)
        obs_metrics.counter("ensemble_train_epochs").inc(self.config.epochs)
        obs_metrics.histogram("ensemble_epoch_seconds").observe_many(
            results[0].epoch_seconds
        )
        return results

    def _gradient(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        sample_weights: Optional[np.ndarray],
    ) -> np.ndarray:
        """Batched Eq. 5 gradient — same operation order as WeightedMSE."""
        sq = self.loss._sq_weights(pred.shape[-1])
        grad = 2.0 * (pred - target) * sq / pred.shape[1]
        if sample_weights is not None:
            grad = grad * sample_weights[:, :, None]
        return grad


def train_ensemble(
    models: Sequence[MLP],
    x: np.ndarray,
    y: np.ndarray,
    loss: Optional[Loss] = None,
    config: Optional[TrainConfig] = None,
    sample_weights: Optional[np.ndarray] = None,
    shuffle_seeds: Optional[Sequence[Optional[int]]] = None,
) -> List[TrainResult]:
    """Convenience wrapper: build an :class:`EnsembleTrainer` and fit."""
    trainer = EnsembleTrainer(loss=loss, config=config)
    return trainer.fit(
        models, x, y, sample_weights=sample_weights, shuffle_seeds=shuffle_seeds
    )
