"""Dense layers with backprop for the NumPy MLP substrate.

Each :class:`DenseLayer` corresponds to one weight matrix ``W_ij`` plus
bias of Eq. (3) and — when the network is deployed on hardware — to one
pair of RRAM crossbars (positive/negative) followed by the analog
activation circuit.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.config.dtype import astype as _astype
from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import xavier_uniform
from repro.parallel.seeding import ensure_rng

__all__ = ["DenseLayer"]

InitFn = Callable[[np.random.Generator, int, int], np.ndarray]


class DenseLayer:
    """Fully connected layer ``y = f(x @ W + b)``.

    Parameters
    ----------
    in_dim, out_dim:
        Fan-in and fan-out.
    activation:
        Activation instance or registered name.
    rng:
        Generator for weight init (required unless ``weights`` given).
    weight_init:
        Initializer function; defaults to Xavier uniform.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: "Activation | str" = "sigmoid",
        rng: Optional[np.random.Generator] = None,
        weight_init: InitFn = xavier_uniform,
    ):
        if in_dim < 1 or out_dim < 1:
            raise ValueError(f"layer dims must be >= 1, got {in_dim}x{out_dim}")
        if isinstance(activation, str):
            activation = get_activation(activation)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        rng = ensure_rng(rng, "nn.DenseLayer")
        self.weights = _astype(weight_init(rng, in_dim, out_dim))
        self.bias = np.zeros(out_dim, dtype=self.weights.dtype)
        # Backprop caches, populated by forward(train=True).
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the layer; cache inputs/pre-activations when training."""
        x = _astype(x)
        pre = x @ self.weights + self.bias
        if train:
            self._x = x
            self._pre = pre
        return self.activation.forward(pre)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the layer.

        Parameters
        ----------
        grad_out:
            Gradient of the loss w.r.t. this layer's output.

        Returns
        -------
        Gradient w.r.t. this layer's input.  Weight/bias gradients are
        stored on ``grad_weights`` / ``grad_bias``.
        """
        if self._x is None or self._pre is None:
            raise RuntimeError("backward() called before forward(train=True)")
        delta = grad_out * self.activation.backward(self._pre)
        self.grad_weights = self._x.T @ delta
        self.grad_bias = delta.sum(axis=0)
        return delta @ self.weights.T

    def params(self) -> Dict[str, np.ndarray]:
        """Live references to the trainable parameter arrays."""
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients from the most recent backward pass."""
        return {"weights": self.grad_weights, "bias": self.grad_bias}

    def copy(self) -> "DenseLayer":
        """Deep copy of the layer (weights and activation shared by type)."""
        clone = DenseLayer.__new__(DenseLayer)
        clone.in_dim = self.in_dim
        clone.out_dim = self.out_dim
        clone.activation = type(self.activation)()
        clone.weights = self.weights.copy()
        clone.bias = self.bias.copy()
        clone._x = None
        clone._pre = None
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseLayer({self.in_dim}->{self.out_dim}, {self.activation.name})"
