"""Gradient-descent optimizers for the MLP substrate."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import DenseLayer

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "get_optimizer"]


class Optimizer:
    """Base optimizer applying per-layer parameter updates in place."""

    def __init__(self, learning_rate: float = 0.1):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, layers: List[DenseLayer]) -> None:
        for i, layer in enumerate(layers):
            params = layer.params()
            grads = layer.grads()
            for name, param in params.items():
                update = self._update(f"{i}/{name}", grads[name])
                param -= update

    def _update(self, key: str, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def _update(self, key: str, grad: np.ndarray) -> np.ndarray:
        del key
        return self.learning_rate * grad


class Momentum(Optimizer):
    """Heavy-ball momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9):
        super().__init__(learning_rate)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def _update(self, key: str, grad: np.ndarray) -> np.ndarray:
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(grad)
        v = self.momentum * v + self.learning_rate * grad
        self._velocity[key] = v
        return v


class Adam(Optimizer):
    """Adam optimizer — the default trainer workhorse."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, layers: List[DenseLayer]) -> None:
        self._t += 1
        super().step(layers)

    def _update(self, key: str, grad: np.ndarray) -> np.ndarray:
        m = self._m.get(key, np.zeros_like(grad))
        v = self._v.get(key, np.zeros_like(grad))
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        return self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


_REGISTRY = {"sgd": SGD, "momentum": Momentum, "adam": Adam}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimizer by name ('sgd', 'momentum', 'adam')."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}") from None
