"""Multi-layer perceptron assembled from dense layers.

The paper's RCS networks are 3-layer MLPs (``I x H x O``) with sigmoid
hidden neurons.  :class:`MLP` supports arbitrary depth since the DSE
flow sweeps hidden sizes and the JPEG benchmark benefits from a wider
topology.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config.dtype import astype as _astype
from repro.nn.layers import DenseLayer
from repro.parallel.seeding import ensure_rng

__all__ = ["MLP"]


class MLP:
    """Feed-forward network ``layer_sizes[0] -> ... -> layer_sizes[-1]``.

    Parameters
    ----------
    layer_sizes:
        Node counts per layer, e.g. ``(2, 8, 2)`` for a 2x8x2 RCS.
    hidden_activation, output_activation:
        Activation names; the paper uses sigmoid everywhere (outputs
        are normalized into the unit interval).
    rng:
        Generator (or seed) for reproducible initialization.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        rng: "Optional[np.random.Generator | int]" = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output layers")
        if any(s < 1 for s in layer_sizes):
            raise ValueError(f"layer sizes must be >= 1: {layer_sizes}")
        rng = ensure_rng(rng, "nn.MLP")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.layers: List[DenseLayer] = []
        for i in range(len(layer_sizes) - 1):
            is_output = i == len(layer_sizes) - 2
            self.layers.append(
                DenseLayer(
                    layer_sizes[i],
                    layer_sizes[i + 1],
                    activation=output_activation if is_output else hidden_activation,
                    rng=rng,
                )
            )

    @property
    def in_dim(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_dim(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the full network on a batch ``(n, in_dim)``."""
        out = _astype(x)
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop a loss gradient through all layers."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, train=False)

    def copy(self) -> "MLP":
        """Deep copy (used when deploying a trained net onto crossbars)."""
        clone = MLP.__new__(MLP)
        clone.layer_sizes = self.layer_sizes
        clone.layers = [layer.copy() for layer in self.layers]
        return clone

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(l.weights.size + l.bias.size for l in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arch = "x".join(str(s) for s in self.layer_sizes)
        return f"MLP({arch})"
