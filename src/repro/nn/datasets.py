"""Dataset utilities: splits, normalization, and SAAB resampling.

SAAB (Algorithm 1, Lines 3-4) maintains a weight distribution over
training samples and draws each learner's training set from it;
:func:`resample` implements that draw.  :class:`UnitScaler` owns the
mapping between engineering units and the unit interval expected by the
fixed-point codec and the sigmoid output stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config.dtype import astype as _astype
from repro.parallel.seeding import ensure_rng

__all__ = ["train_test_split", "UnitScaler", "resample", "minibatches"]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.1,
    rng: "np.random.Generator | int | None" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split paired arrays into train/test partitions."""
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_rng(rng, "nn.train_test_split")
    order = rng.permutation(len(x))
    n_test = max(1, int(round(len(x) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


@dataclass
class UnitScaler:
    """Affine map between a known value range and ``[0, 1)``.

    The scaler squeezes values into ``[margin, 1 - margin]`` so that
    targets stay inside the sigmoid's responsive region and below the
    fixed-point codec's saturation point.
    """

    low: np.ndarray
    high: np.ndarray
    margin: float = 0.0

    def __post_init__(self) -> None:
        self.low = np.atleast_1d(_astype(self.low))
        self.high = np.atleast_1d(_astype(self.high))
        if self.low.shape != self.high.shape:
            raise ValueError("low/high shape mismatch")
        if np.any(self.high <= self.low):
            raise ValueError("high must exceed low elementwise")
        if not 0 <= self.margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {self.margin}")

    @classmethod
    def from_data(cls, values: np.ndarray, margin: float = 0.0) -> "UnitScaler":
        """Fit the range from observed data columns."""
        values = np.atleast_2d(_astype(values))
        low = values.min(axis=0)
        high = values.max(axis=0)
        # Guard degenerate constant columns.
        span = high - low
        high = np.where(span <= 0, low + 1.0, high)
        return cls(low=low, high=high, margin=margin)

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Engineering units -> unit interval."""
        values = _astype(values)
        unit = (values - self.low) / (self.high - self.low)
        return self.margin + unit * (1.0 - 2.0 * self.margin)

    def inverse(self, unit: np.ndarray) -> np.ndarray:
        """Unit interval -> engineering units."""
        unit = _astype(unit)
        core = (unit - self.margin) / (1.0 - 2.0 * self.margin)
        return self.low + core * (self.high - self.low)


def resample(
    x: np.ndarray,
    y: np.ndarray,
    probabilities: np.ndarray,
    size: "int | None" = None,
    rng: "np.random.Generator | int | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a bootstrap sample according to a weight distribution.

    Implements Algorithm 1 Line 4: "hard" samples (large weight) are
    over-represented in the new learner's training set.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    # sampling probabilities feed Generator.choice and are part of the
    # float64 RNG replay contract, not the REPRO_DTYPE data path
    p = np.asarray(probabilities, dtype=float)  # repro-lint: disable=RPR007
    if len(x) != len(y) or len(p) != len(x):
        raise ValueError("x, y and probabilities must share their length")
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if total <= 0:
        raise ValueError("probabilities sum to zero")
    p = p / total
    if size is None:
        size = len(x)
    rng = ensure_rng(rng, "nn.resample")
    idx = rng.choice(len(x), size=size, replace=True, p=p)
    return x[idx], y[idx]


def minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: "np.random.Generator | int | None" = None,
    sample_weights: "np.ndarray | None" = None,
):
    """Yield shuffled minibatches ``(xb, yb[, wb])`` covering the data once."""
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = ensure_rng(rng, "nn.minibatches")
    order = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        idx = order[start : start + batch_size]
        if sample_weights is None:
            yield x[idx], y[idx], None
        else:
            yield x[idx], y[idx], sample_weights[idx]
