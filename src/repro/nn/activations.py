"""Activation functions for the NumPy MLP substrate.

The RCS realizes the nonlinear activation with analog circuits
(Sec. 2.1); the paper's networks use sigmoid-style neurons.  Each
activation exposes ``forward`` and ``backward`` (derivative in terms of
the *pre-activation* input), so layers can cache only what they need.
"""

from __future__ import annotations

import numpy as np

from repro.config.dtype import astype as _astype

__all__ = ["Activation", "Sigmoid", "Tanh", "Relu", "Identity", "get_activation"]


class Activation:
    """Base class for activation functions."""

    name = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, x: np.ndarray) -> np.ndarray:
        """Derivative of the activation evaluated at pre-activation x."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Sigmoid(Activation):
    """Logistic sigmoid — the analog neuron of the paper's RCS."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Clip to avoid overflow in exp for extreme pre-activations.
        x = np.clip(x, -60.0, 60.0)
        return 1.0 / (1.0 + np.exp(-x))

    def backward(self, x: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent neuron."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, x: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return 1.0 - t * t


class Relu(Activation):
    """Rectified linear unit (not used by the paper; kept for studies)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray) -> np.ndarray:
        return _astype(x > 0.0)


class Identity(Activation):
    """Linear output stage (plain summing amplifier)."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return _astype(x)

    def backward(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(_astype(x))


_REGISTRY = {cls.name: cls for cls in (Sigmoid, Tanh, Relu, Identity)}


def get_activation(name: str) -> Activation:
    """Look up an activation by name ('sigmoid', 'tanh', 'relu', 'identity')."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; known: {sorted(_REGISTRY)}") from None
