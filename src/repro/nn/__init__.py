"""From-scratch NumPy neural-network substrate for the RCS.

``_astype`` is the package-wide array-conversion helper: it replaces
the former scattered ``np.asarray(x, dtype=float)`` idiom and honours
the ``REPRO_DTYPE`` knob (float64 default, float32 opt-in).
"""

from repro.config.dtype import astype as _astype
from repro.nn.activations import Activation, Identity, Relu, Sigmoid, Tanh, get_activation
from repro.nn.datasets import UnitScaler, minibatches, resample, train_test_split
from repro.nn.ensemble import EnsembleTrainer, train_ensemble
from repro.nn.layers import DenseLayer
from repro.nn.losses import Loss, WeightedMSE, mse
from repro.nn.network import MLP
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, get_optimizer
from repro.nn.trainer import TrainConfig, Trainer, TrainResult

__all__ = [
    "_astype",
    "EnsembleTrainer",
    "train_ensemble",
    "Activation",
    "Sigmoid",
    "Tanh",
    "Relu",
    "Identity",
    "get_activation",
    "DenseLayer",
    "MLP",
    "Loss",
    "WeightedMSE",
    "mse",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "get_optimizer",
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "UnitScaler",
    "train_test_split",
    "resample",
    "minibatches",
]
