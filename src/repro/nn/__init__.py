"""From-scratch NumPy neural-network substrate for the RCS."""

from repro.nn.activations import Activation, Identity, Relu, Sigmoid, Tanh, get_activation
from repro.nn.datasets import UnitScaler, minibatches, resample, train_test_split
from repro.nn.layers import DenseLayer
from repro.nn.losses import Loss, WeightedMSE, mse
from repro.nn.network import MLP
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, get_optimizer
from repro.nn.trainer import TrainConfig, Trainer, TrainResult

__all__ = [
    "Activation",
    "Sigmoid",
    "Tanh",
    "Relu",
    "Identity",
    "get_activation",
    "DenseLayer",
    "MLP",
    "Loss",
    "WeightedMSE",
    "mse",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "get_optimizer",
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "UnitScaler",
    "train_test_split",
    "resample",
    "minibatches",
]
