"""Weight initializers for the MLP substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "uniform", "zeros"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init — the default for sigmoid networks."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier normal init."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def uniform(rng: np.random.Generator, fan_in: int, fan_out: int, scale: float = 0.1) -> np.ndarray:
    """Small uniform init in ``[-scale, scale]``."""
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


def zeros(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """All-zero init (bias vectors)."""
    del rng
    return np.zeros((fan_in, fan_out))
