"""Timing harness for the performance layer (``docs/performance.md``).

Measures the two levels on this machine and archives the numbers:

* level 1 — the vectorized Monte-Carlo robustness evaluation
  (``predict_trials``) against the serial per-trial reference loop, at
  the paper-scale trial count;
* level 2 — a multi-worker seed-repeat sweep on the full engine
  (vectorized evaluation, training bookkeeping off) against the
  serial, fully-tracked baseline.

Both comparisons assert bit-identical outputs before reporting any
speedup.  Results go to ``BENCH_parallel.json`` (repo root, mirrored
under ``benchmarks/out/``).  Marked ``slow``: run with

    pytest benchmarks/test_bench_parallel.py -m slow --benchmark-only
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.rcs import TraditionalRCS
from repro.cost.area import Topology
from repro.device.variation import NonIdealFactors
from repro.experiments.runner import repeat_with_seeds
from repro.metrics.robustness import evaluate_under_noise
from repro.nn.trainer import TrainConfig
from repro.obs.runinfo import provenance_header
from repro.parallel import SerialExecutor, get_executor

pytestmark = pytest.mark.slow

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).parent / "out"

NOISE = NonIdealFactors(sigma_pv=0.1, seed=7)
TRIALS = 100
SAMPLES = 32
SWEEP_SEEDS = 4
SWEEP_WORKERS = 4
SWEEP_SIGMAS = (0.05, 0.1, 0.15)


def _timeit(fn, repeats=5):
    """Best-of-N wall time (seconds) and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _mae(pred, true):
    return float(np.mean(np.abs(pred - true)))


def _dataset(seed, n=SAMPLES):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n, 2))
    y = 0.25 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


def _train_rcs(seed, x, y, tracked):
    cfg = TrainConfig(
        epochs=10,
        batch_size=16,
        learning_rate=0.02,
        shuffle_seed=seed,
        track_train_loss=tracked,
    )
    return TraditionalRCS(Topology(2, 16, 1), seed=seed).train(x, y, cfg)


def _sweep_run(seed, optimized):
    """One seed of the sweep: train an RCS, score it at several PV levels.

    The two variants differ only in engine knobs whose results are
    guaranteed unchanged (loss bookkeeping, vectorized evaluation), so
    their returned errors must agree bit for bit.
    """
    x, y = _dataset(seed)
    rcs = _train_rcs(seed, x, y, tracked=not optimized)
    level_means = [
        evaluate_under_noise(
            rcs,
            x,
            y,
            _mae,
            NonIdealFactors(sigma_pv=sigma, seed=7),
            trials=TRIALS,
            vectorize=optimized,
        ).mean
        for sigma in SWEEP_SIGMAS
    ]
    # Fixed-order sum of per-level means: still bit-deterministic.
    return float(np.sum(level_means))


def _sweep_run_baseline(seed):
    return _sweep_run(seed, optimized=False)


def _sweep_run_optimized(seed):
    return _sweep_run(seed, optimized=True)


def _save_json(payload):
    text = json.dumps(payload, indent=2) + "\n"
    (REPO_ROOT / "BENCH_parallel.json").write_text(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_parallel.json").write_text(text)


def test_bench_parallel(save_report):
    # -- level 1: looped vs vectorized Monte-Carlo evaluation ----------
    x, y = _dataset(0)
    rcs = _train_rcs(0, x, y, tracked=False)
    t_looped, looped = _timeit(
        lambda: evaluate_under_noise(
            rcs, x, y, _mae, NOISE, trials=TRIALS, vectorize=False
        )
    )
    t_vectorized, vectorized = _timeit(
        lambda: evaluate_under_noise(rcs, x, y, _mae, NOISE, trials=TRIALS)
    )
    assert np.array_equal(looped.values, vectorized.values)
    eval_speedup = t_looped / t_vectorized

    # -- level 2: serial tracked baseline vs multi-worker engine -------
    t_baseline, baseline = _timeit(
        lambda: repeat_with_seeds(
            _sweep_run_baseline, range(SWEEP_SEEDS), executor=SerialExecutor()
        ),
        repeats=3,
    )
    # Thread workers: the sweep's heavy ops (stacked matmuls) release
    # the GIL, and threads avoid interpreter spawn cost on small hosts.
    t_optimized, optimized = _timeit(
        lambda: repeat_with_seeds(
            _sweep_run_optimized,
            range(SWEEP_SEEDS),
            executor=get_executor(SWEEP_WORKERS, kind="thread"),
        ),
        repeats=3,
    )
    assert np.array_equal(baseline[2], optimized[2])
    sweep_speedup = t_baseline / t_optimized

    payload = {
        # Full provenance (git SHA, hostname, toolchain, REPRO_* knobs)
        # so archived trajectories stay comparable across PRs.
        "provenance": provenance_header(workers=SWEEP_WORKERS),
        "robustness_eval": {
            "system": "TraditionalRCS 2x16x1",
            "noise": {"sigma_pv": NOISE.sigma_pv, "sigma_sf": NOISE.sigma_sf},
            "trials": TRIALS,
            "samples": len(x),
            "seconds_looped": round(t_looped, 4),
            "seconds_vectorized": round(t_vectorized, 4),
            "speedup": round(eval_speedup, 2),
            "bit_identical": True,
        },
        "seed_repeat_sweep": {
            "seeds": SWEEP_SEEDS,
            "workers": SWEEP_WORKERS,
            "executor": "thread",
            "noise_levels": list(SWEEP_SIGMAS),
            "trials_per_level": TRIALS,
            "seconds_baseline": round(t_baseline, 4),
            "seconds_optimized": round(t_optimized, 4),
            "speedup": round(sweep_speedup, 2),
            "bit_identical": True,
        },
    }
    _save_json(payload)
    save_report(
        "bench_parallel",
        "Performance layer timings\n"
        f"robustness eval (trials={TRIALS}): "
        f"looped {t_looped:.3f}s, vectorized {t_vectorized:.3f}s "
        f"-> {eval_speedup:.1f}x\n"
        f"seed sweep ({SWEEP_SEEDS} seeds, {SWEEP_WORKERS} workers): "
        f"baseline {t_baseline:.3f}s, optimized {t_optimized:.3f}s "
        f"-> {sweep_speedup:.1f}x",
    )
    assert eval_speedup > 1.0
    assert sweep_speedup > 1.0
