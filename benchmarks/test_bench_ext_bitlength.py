"""Extension bench: MEI word-length sweep (the paper's future work).

Shape targets: error drops (or holds) as bits grow from starved (4)
to generous (10-12); cost savings shrink monotonically with bits since
every extra bit adds crossbar rows/columns (Eq. 7).
"""

from repro.experiments.bitlength import run_bitlength

BITS = (4, 6, 8, 10)


def test_bench_ext_bitlength(benchmark, save_report, scale):
    result = benchmark.pedantic(
        run_bitlength,
        kwargs={"name": "inversek2j", "bit_lengths": BITS, "scale": scale, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_report("ext_bitlength", result.render())

    by_bits = {p.bits: p for p in result.points}
    # Starved interfaces hurt: 4-bit should be clearly worse than 8-bit.
    assert by_bits[4].mse > by_bits[8].mse
    # Savings shrink as the interface widens (Eq. 7 is linear in ports).
    saved = [p.area_saved for p in result.points]
    assert saved == sorted(saved, reverse=True)
