"""Bench: Table 1 — the six-benchmark Digital / AD/DA / MEI comparison.

Reproduced quantities per benchmark:

* normalized-output MSE and application error for the three systems;
* the pruned MEI topology (Table 1's ``(D . B)`` column);
* area/power saved — exact on the paper's topologies with the
  NNLS-calibrated coefficients, and measured on our pruned topologies.

Shape targets (the absolute errors depend on the training budget):

* the Digital ANN is the best (or tied) system on every benchmark;
* MEI lands in the same error band as the AD/DA RCS (the paper finds
  it sometimes better — FFT/JPEG/Sobel — and sometimes worse —
  Inversek2j);
* the calibrated cost model reproduces the paper's savings to <2%.
"""

import pytest

from repro.experiments.table1 import calibrated_params, run_benchmark_row
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1


@pytest.fixture(scope="module")
def params():
    return calibrated_params()


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_bench_table1_row(name, benchmark, save_report, scale, params):
    row = benchmark.pedantic(
        run_benchmark_row,
        kwargs={"name": name, "scale": scale, "seed": 0, "params": params},
        rounds=1,
        iterations=1,
    )
    paper = PAPER_TABLE1[name]
    lines = [
        f"Table 1 row — {name}",
        f"topology {row.topology} -> pruned MEI {row.pruned_topology} "
        f"(paper: {paper.pruned_mei})",
        f"MSE digital/adda/mei: {row.mse_digital:.5f} / {row.mse_adda:.5f} / "
        f"{row.mse_mei:.5f}",
        f"err digital/adda/mei: {row.error_digital:.4f} / {row.error_adda:.4f} / "
        f"{row.error_mei:.4f}  (paper: {paper.error_digital:.4f} / "
        f"{paper.error_adda:.4f} / {paper.error_mei:.4f})",
        f"area saved  — paper {paper.area_saved:.4f}, calibrated-on-paper-topology "
        f"{row.area_saved_paper_topology:.4f}, measured {row.area_saved_measured:.4f}",
        f"power saved — paper {paper.power_saved:.4f}, calibrated-on-paper-topology "
        f"{row.power_saved_paper_topology:.4f}, measured {row.power_saved_measured:.4f}",
    ]
    save_report(f"table1_{name}", "\n".join(lines), rows=[row.as_dict()])

    # Digital is the quality ceiling (small tolerance for noise in the
    # application metrics at quick scales).
    assert row.error_digital <= row.error_adda * 1.25 + 0.02
    # MEI is in the AD/DA band — "approximate, or even better" (Sec 5.2).
    # Our first-order trainer underfits the bit-level mapping at the
    # paper's exact hidden sizes, so the band is wider than the paper's
    # (largest measured ratio: fft ~2.8x at quick scale).
    assert row.error_mei <= max(3.0 * row.error_adda, row.error_adda + 0.1)
    # The calibrated cost model reproduces the published savings.
    assert abs(row.area_saved_paper_topology - paper.area_saved) < 0.02
    assert abs(row.power_saved_paper_topology - paper.power_saved) < 0.02
    # MEI saves cost on our measured topologies too.
    assert row.area_saved_measured > 0.3
    assert row.power_saved_measured > 0.3
