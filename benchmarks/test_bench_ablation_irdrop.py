"""Ablation bench: behavioural crossbar vs MNA IR-drop solver.

The paper picks the 90nm node "to reduce the impact of IR drop" and
defers larger arrays to future work.  This bench quantifies that
choice: IR-drop error of random crossbars across array sizes and
technology nodes, against the ideal (zero-wire-resistance) model.
"""

from repro.experiments.runner import format_table
from repro.xbar.ir_drop import sweep_ir_drop, wire_resistance_for_node

SIZES = (8, 16, 32, 64)
NODES = (90, 45, 22)


def test_bench_ablation_irdrop(benchmark, save_report):
    def run():
        rows = []
        for node in NODES:
            r_wire = wire_resistance_for_node(node)
            for point in sweep_ir_drop(SIZES, [r_wire], n_vectors=8, seed=0):
                rows.append([node, point.size, point.wire_resistance,
                             point.relative_error])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_irdrop",
        "IR-drop ablation — MNA vs ideal crossbar, relative output error\n"
        + format_table(["node (nm)", "array size", "R_wire (ohm)", "rel err"], rows),
    )
    by_key = {(r[0], r[1]): r[3] for r in rows}
    # Error grows with array size at a fixed node ...
    assert by_key[(90, 64)] > by_key[(90, 8)]
    # ... and with smaller technology nodes at a fixed size.
    assert by_key[(22, 64)] > by_key[(90, 64)]
    # At the paper's 90nm / small-array operating point IR drop is small.
    assert by_key[(90, 8)] < 0.05
