"""Bench: the accuracy/area/power trade-off frontier (Sec. 4's goal).

Enumerates a small grid of MEI design points on the kmeans workload
and reports the Pareto-optimal frontier — the designer-facing view of
"trade-offs among accuracy, area, and power consumption".
"""

from repro.core.tradeoff import enumerate_tradeoffs
from repro.experiments.runner import train_config
from repro.workloads.registry import make_benchmark


def test_bench_tradeoff_frontier(benchmark, save_report, scale):
    bench = make_benchmark("kmeans")
    data = bench.dataset(n_train=scale.n_train, n_test=scale.n_test, seed=0)

    def run():
        return enumerate_tradeoffs(
            bench.spec.topology,
            data.x_train, data.y_train, data.x_test, data.y_test,
            bench.error_normalized,
            hidden_sizes=(16, 40),
            ensemble_sizes=(1, 2),
            bit_lengths=(6, 8),
            train_config=train_config(scale, 0),
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("tradeoff_kmeans", result.render())

    assert len(result.points) == 8
    front = result.pareto
    assert 1 <= len(front) <= len(result.points)
    # The frontier must contain the most accurate point and trade
    # monotonically: sorted by error, savings never increase backwards.
    best_error = min(p.error for p in result.points)
    assert front[0].error == best_error
    areas = [p.area_saved for p in front]
    assert areas == sorted(areas)
