"""Ablation bench: device I-V nonlinearity — AD/DA vs MEI sensitivity.

Real RRAM cells conduct super-linearly with voltage (sinh-like I-V).
An analog-driven crossbar (the AD/DA RCS input layer) is distorted by
it; MEI's first layer drives exact 0/1 levels, which sit on the sinh
curve's fixed points and pass through undistorted.  Hidden-layer
analog signals are distorted in both architectures.

This bench sweeps the nonlinearity alpha and measures each
architecture's accuracy degradation, quantifying one more advantage of
merging the interface.
"""


from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.experiments.runner import format_table
from repro.nn.trainer import TrainConfig
from repro.workloads.registry import make_benchmark
from repro.xbar.mapping import MappingConfig

ALPHAS = (0.0, 1.0, 3.0)
TRAIN = TrainConfig(epochs=300, batch_size=32, learning_rate=0.01, shuffle_seed=0,
                    lr_decay=0.5, lr_decay_every=150)


def test_bench_ablation_nonlinearity(benchmark, save_report):
    bench = make_benchmark("kmeans")
    data = bench.dataset(n_train=2500, n_test=400, seed=0)
    topo = bench.spec.topology

    def run():
        rows = []
        for alpha in ALPHAS:
            mapping = MappingConfig(input_nonlinearity=alpha)
            rcs = TraditionalRCS(topo, mapping_config=mapping, seed=0).train(
                data.x_train, data.y_train, TRAIN
            )
            mei = MEI(
                MEIConfig(topo.inputs, topo.outputs, 32),
                mapping_config=mapping,
                seed=0,
            ).train(data.x_train, data.y_train, TRAIN)
            rows.append([
                alpha,
                bench.error_normalized(rcs.predict(data.x_test), data.y_test),
                bench.error_normalized(mei.predict(data.x_test), data.y_test),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_nonlinearity",
        "I-V nonlinearity ablation (kmeans) — error vs sinh alpha\n"
        + format_table(["alpha", "AD/DA RCS", "MEI"], rows),
    )
    by_alpha = {r[0]: r for r in rows}
    adda_degradation = by_alpha[3.0][1] - by_alpha[0.0][1]
    mei_degradation = by_alpha[3.0][2] - by_alpha[0.0][2]
    # Strong nonlinearity hurts the analog-driven architecture more.
    assert adda_degradation > 0.005
    assert mei_degradation < adda_degradation
