"""Bench: Fig. 5 — error under process variation and signal fluctuation.

Paper shapes asserted:

* error grows with the noise level for every system;
* MEI is markedly more robust to signal fluctuation than the AD/DA
  architecture (discrete 0/1 inputs regenerate at the receivers);
* SAAB and the wider-hidden-layer method both mitigate process
  variation relative to a single MEI (which one wins is benchmark-
  dependent — the reason Algorithm 2 keeps both).
"""


from repro.experiments.fig5 import run_fig5

BENCHES = ("inversek2j", "jpeg", "sobel")
SIGMAS = (0.0, 0.1, 0.2)


def test_bench_fig5_robustness(benchmark, save_report, scale):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"names": BENCHES, "sigmas": SIGMAS, "scale": scale, "seed": 0, "k": 3},
        rounds=1,
        iterations=1,
    )
    save_report("fig5_robustness", result.render(), rows=result.row_dicts())

    for name in BENCHES:
        # Error grows (weakly) with PV level for the baseline MEI.
        pv = result.curve(name, "mei", "pv").errors
        assert pv[-1] >= pv[0] - 0.01

        # MEI beats AD/DA on signal-fluctuation degradation.
        adda_sf = result.curve(name, "adda", "sf").errors
        mei_sf = result.curve(name, "mei", "sf").errors
        adda_degradation = adda_sf[-1] - adda_sf[0]
        mei_degradation = mei_sf[-1] - mei_sf[0]
        assert mei_degradation <= adda_degradation + 0.01, name

    # Mitigation under PV: at the highest sigma, SAAB or wide-hidden
    # improves on the single MEI for at least two of three benchmarks
    # (the paper: which one wins varies per application).
    mitigated = 0
    for name in BENCHES:
        base = result.curve(name, "mei", "pv").errors[-1]
        saab = result.curve(name, "saab", "pv").errors[-1]
        wide = result.curve(name, "wide", "pv").errors[-1]
        if min(saab, wide) <= base + 0.005:
            mitigated += 1
    assert mitigated >= 2
