"""Extension bench: variation-aware training vs post-hoc mitigation.

The paper hardens systems against process variation structurally
(SAAB, wider hidden layers).  A complementary lever the framework
supports is *variation-aware training* — injecting multiplicative
weight noise during training so the network lands in a flat minimum.
This bench compares the PV degradation of a plainly-trained MEI
against a variation-aware one, and also reports ICE inline calibration
on a statically-varied chip instance.
"""

import numpy as np

from repro.core.calibration import ice_calibrate
from repro.core.mei import MEI, MEIConfig
from repro.device.variation import NonIdealFactors
from repro.experiments.runner import format_table
from repro.nn.trainer import TrainConfig
from repro.workloads.registry import make_benchmark

SIGMA_PV = 0.2
TRIALS = 5


def test_bench_ext_variation_aware(benchmark, save_report):
    bench = make_benchmark("kmeans")
    data = bench.dataset(n_train=2500, n_test=400, seed=0)
    topo = bench.spec.topology
    noise = NonIdealFactors(sigma_pv=SIGMA_PV, seed=11)

    def evaluate(mei):
        clean = bench.error_normalized(mei.predict(data.x_test), data.y_test)
        noisy = float(np.mean([
            bench.error_normalized(mei.predict(data.x_test, noise, t), data.y_test)
            for t in range(TRIALS)
        ]))
        return clean, noisy

    def run():
        rows = []
        for label, weight_noise in (("plain", 0.0), ("variation-aware", 0.1)):
            cfg = TrainConfig(epochs=300, batch_size=32, learning_rate=0.01,
                              shuffle_seed=0, lr_decay=0.5, lr_decay_every=150,
                              weight_noise_sigma=weight_noise)
            mei = MEI(MEIConfig(topo.inputs, topo.outputs, 32), seed=0).train(
                data.x_train, data.y_train, cfg
            )
            clean, noisy = evaluate(mei)
            rows.append([label, clean, noisy, noisy - clean])
            if label == "plain":
                # ICE calibration of one statically-varied chip instance.
                mei.analog.freeze_variation(NonIdealFactors(sigma_pv=SIGMA_PV, seed=3))
                frozen = bench.error_normalized(mei.predict(data.x_test), data.y_test)
                bits = mei.encode_inputs(data.x_train)
                ice_calibrate(mei.analog, mei.network.predict(bits), bits)
                calibrated = bench.error_normalized(mei.predict(data.x_test), data.y_test)
                rows.append(["frozen chip (uncal.)", frozen, float("nan"), float("nan")])
                rows.append(["frozen chip (ICE cal.)", calibrated, float("nan"),
                             float("nan")])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_variation_aware",
        f"Variation-aware training & ICE calibration (kmeans, PV sigma={SIGMA_PV})\n"
        + format_table(["system", "clean err", "noisy err", "degradation"], rows),
    )
    by_label = {r[0]: r for r in rows}
    # Variation-aware training degrades no more than plain under PV.
    assert by_label["variation-aware"][3] <= by_label["plain"][3] + 0.01
    # ICE calibration recovers accuracy on the frozen chip.
    assert by_label["frozen chip (ICE cal.)"][1] <= by_label["frozen chip (uncal.)"][1] + 1e-9
