"""Bench: Fig. 4 — accuracy of Digital / AD/DA / MEI / MEI + SAAB.

Paper shape: SAAB (run at the Eq. 9 maximum ensemble size) improves
the accuracy of every benchmark, by 5.76% on average (up to 13.05%).
At quick scales we assert the direction (mean improvement positive,
no benchmark materially hurt) rather than the exact magnitude.
"""

from repro.experiments.fig4 import run_fig4
from repro.workloads.registry import BENCHMARK_NAMES


def test_bench_fig4_methods(benchmark, save_report, scale):
    result = benchmark.pedantic(
        run_fig4,
        kwargs={"names": BENCHMARK_NAMES, "scale": scale, "seed": 0, "max_k": 3},
        rounds=1,
        iterations=1,
    )
    save_report("fig4_methods", result.render(), rows=result.row_dicts())

    assert len(result.rows) == len(BENCHMARK_NAMES)
    # SAAB helps on average ...
    assert result.average_improvement > 0.0
    # ... and never costs any benchmark more than noise-level accuracy.
    for row in result.rows:
        assert row.saab_improvement > -0.03, row
