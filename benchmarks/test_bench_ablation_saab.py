"""Ablation bench: SAAB's relaxed top-B_C-bit error vs full-bit error.

Algorithm 1 Line 6 compares only the most significant ``B_C`` bits
when judging a sample "hard"; the paper warns that without this
relaxation "most of the training samples will be either sensitive or
hard ... and the performance of SAAB may significantly decrease".
This bench sweeps ``B_C`` and records each setting's measured learner
error rates and final ensemble accuracy.
"""

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.experiments.runner import format_table
from repro.nn.trainer import TrainConfig
from repro.workloads.registry import make_benchmark

TRAIN = TrainConfig(epochs=150, batch_size=128, learning_rate=0.01, shuffle_seed=0,
                    lr_decay=0.5, lr_decay_every=50)


def test_bench_ablation_saab_compare_bits(benchmark, save_report):
    bench = make_benchmark("fft")
    data = bench.dataset(n_train=2500, n_test=400, seed=0)

    def run():
        rows = []
        for compare_bits in (2, 4, 8):
            saab = SAAB(
                lambda k: MEI(MEIConfig(1, 2, 32), seed=50 + k),
                SAABConfig(n_learners=3, compare_bits=compare_bits, seed=0),
            ).train(data.x_train, data.y_train, TRAIN)
            mean_learner_error = float(np.mean([r.error for r in saab.rounds]))
            ensemble_error = bench.error_normalized(saab.predict(data.x_test), data.y_test)
            rows.append([compare_bits, mean_learner_error, ensemble_error])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_saab",
        "SAAB ablation — relaxed comparison width B_C on fft\n"
        + format_table(["B_C", "mean learner err (Line 6)", "ensemble app err"], rows),
    )
    by_bc = {r[0]: r for r in rows}
    # Strict full-bit comparison marks nearly every sample wrong (the
    # failure mode the relaxation exists to avoid).
    assert by_bc[8][1] > by_bc[2][1]
    assert by_bc[8][1] > 0.5
    # The relaxed settings keep learners better than chance.
    assert by_bc[2][1] < 0.5
