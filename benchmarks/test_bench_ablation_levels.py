"""Ablation bench: finite RRAM conductance levels.

The paper assumes continuously tunable devices ("the resistance of an
RRAM device can be changed to arbitrary state within a specific
range", Sec. 2.1).  Real arrays program a finite number of levels;
this ablation quantifies how many levels the MEI architecture needs
before the continuous-device assumption is harmless.
"""


from repro.core.mei import MEI, MEIConfig
from repro.device.rram import RRAMDevice
from repro.experiments.runner import format_table
from repro.nn.trainer import TrainConfig
from repro.workloads.registry import make_benchmark

LEVELS = (4, 16, 64, 0)  # 0 = continuous
TRAIN = TrainConfig(epochs=200, batch_size=32, learning_rate=0.01, shuffle_seed=0,
                    lr_decay=0.5, lr_decay_every=100)


def test_bench_ablation_levels(benchmark, save_report):
    bench = make_benchmark("sobel")
    data = bench.dataset(n_train=2500, n_test=400, seed=0)
    topo = bench.spec.topology

    def run():
        rows = []
        for levels in LEVELS:
            device = RRAMDevice(levels=levels)
            mei = MEI(
                MEIConfig(topo.inputs, topo.outputs, 16),
                device=device,
                seed=0,
            ).train(data.x_train, data.y_train, TRAIN)
            error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
            rows.append(["continuous" if levels == 0 else levels, error])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_levels",
        "Device-level ablation — programmable conductance levels (sobel MEI)\n"
        + format_table(["levels", "error"], rows),
    )
    errors = {r[0]: r[1] for r in rows}
    # Coarse 4-level devices hurt; 64 levels approaches continuous.
    assert errors[4] > errors["continuous"]
    assert errors[64] < errors[4]
    assert abs(errors[64] - errors["continuous"]) < 0.1
