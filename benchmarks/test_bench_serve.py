"""Loadgen benchmark for the inference serving layer.

Trains the ``fft`` workload with the Table-1 recipe at the ambient
scale, materializes it through the on-disk artifact (save -> load),
**asserts the served path is bit-identical** to the in-process system,
then drives the asyncio HTTP front with the closed-loop load generator
and reports sustained requests/sec plus client-side p50/p99 latency.

Results go to ``BENCH_serve.json`` (repo root, mirrored under
``benchmarks/out/``); ``python -m repro bench`` ingests the payload as
``bench_serve.*`` history metrics and ``python -m repro compare``
gates them against the committed baseline (throughput/latency are
perf-class — advisory unless ``--strict``; the ok/shed/error counts
are exact).  Marked ``slow``: run with

    pytest benchmarks/test_bench_serve.py -m slow
"""

import json
import pathlib

import numpy as np
import pytest

from repro.obs.runinfo import provenance_header
from repro.serve import (
    BackgroundServer,
    BatchPolicy,
    InferenceEngine,
    load_artifact,
    run_loadgen,
    save_artifact,
    train_serve_system,
)

pytestmark = pytest.mark.slow

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).parent / "out"

BENCHMARK = "fft"
LOADGEN_REQUESTS = 200
LOADGEN_CONCURRENCY = 8
SAMPLES_PER_REQUEST = 2


def _save_json(payload):
    text = json.dumps(payload, indent=2) + "\n"
    (REPO_ROOT / "BENCH_serve.json").write_text(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_serve.json").write_text(text)


def test_bench_serve(scale, save_report, tmp_path):
    system, data = train_serve_system(BENCHMARK, scale=scale, seed=0)

    # The artifact path IS the serving path: save -> load -> serve.
    model = load_artifact(
        save_artifact(system, tmp_path / f"serve-{BENCHMARK}.npz", benchmark=BENCHMARK)
    )

    # Bit-identity gate before any timing: the loaded system must
    # reproduce the live system exactly on the held-out split.
    probe = np.clip(data.x_test[:16], 0.0, 1.0)
    expected = system.predict_trials(probe, trials=1)[0]
    assert np.array_equal(InferenceEngine(model.system).predict(probe), expected)

    policy = BatchPolicy.from_knobs()
    with BackgroundServer(model, port=0, policy=policy) as server:
        result = run_loadgen(
            server.url,
            in_dim=InferenceEngine(model.system).in_dim,
            requests=LOADGEN_REQUESTS,
            concurrency=LOADGEN_CONCURRENCY,
            samples_per_request=SAMPLES_PER_REQUEST,
            seed=0,
        )

    payload = {
        "provenance": provenance_header(),
        "benchmark": BENCHMARK,
        "scale": scale.name,
        "interface": model.interface,
        "policy": {
            "max_batch": policy.max_batch,
            "max_delay_seconds": policy.max_delay,
            "queue_limit": policy.queue_limit,
        },
        "loadgen": result.as_dict(),
        "bit_identical": True,
    }
    _save_json(payload)
    save_report(
        "bench_serve",
        "Inference serving loadgen\n"
        f"benchmark {BENCHMARK} ({model.kind}), scale {scale.name}, "
        f"{LOADGEN_REQUESTS} requests x {SAMPLES_PER_REQUEST} samples, "
        f"concurrency {LOADGEN_CONCURRENCY}\n"
        f"sustained {result.requests_per_second:.0f} req/s, "
        f"p50 {result.latency_p50_ms:.2f} ms, p99 {result.latency_p99_ms:.2f} ms\n"
        f"ok {result.ok}/{result.requests}, shed {result.shed}, "
        f"errors {result.errors}",
    )

    # Acceptance: every request served (no shedding at this offered
    # load, no transport errors) at a deliberately conservative floor —
    # the smoke run sustains hundreds of req/s; regressions in the
    # actual numbers are caught by the compare gate, not by this floor.
    assert result.ok == result.requests
    assert result.shed == 0
    assert result.errors == 0
    assert result.requests_per_second > 20.0
