"""Bench: the Sec. 4 design space exploration flow, end to end.

Runs Algorithm 2 on a benchmark with a realistic error requirement,
reporting the chosen architecture, the Eq. 9 bound, and the resulting
area/power savings.  Also exercises the "Mission Impossible" exit.
"""

from repro.core.dse import DSEConfig, explore
from repro.device.variation import NonIdealFactors
from repro.experiments.runner import train_config
from repro.workloads.registry import make_benchmark


def test_bench_dse_sobel(benchmark, save_report, scale):
    bench = make_benchmark("sobel")
    data = bench.dataset(n_train=scale.n_train, n_test=scale.n_test, seed=0)
    config = DSEConfig(
        error_requirement=0.12,
        robustness_requirement=0.5,
        noise=NonIdealFactors(sigma_pv=0.05, sigma_sf=0.05, seed=9),
        initial_hidden=8,
        max_hidden=64,
        noise_trials=scale.noise_trials,
        prune=True,
        seed=0,
    )

    def run():
        return explore(
            bench.spec.topology,
            data.x_train, data.y_train, data.x_test, data.y_test,
            bench.error_normalized, config, train_config(scale, 0),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "DSE (Algorithm 2) on sobel",
        f"status={result.status} hidden={result.hidden} K={result.k} "
        f"(K_max={result.k_max}) used_saab={result.used_saab}",
        f"final topology: {result.topology}",
        f"error={result.error:.4f} robustness={result.robustness:.3f}",
        f"area saved={result.area_saved:.4f} power saved={result.power_saved:.4f}",
        "log:",
        *("  " + line for line in result.log),
    ]
    save_report("dse_sobel", "\n".join(lines))

    assert result.status == "ok"
    assert result.error <= config.error_requirement
    assert result.k <= result.k_max


def test_bench_dse_mission_impossible(benchmark, save_report, scale):
    bench = make_benchmark("sobel")
    data = bench.dataset(n_train=600, n_test=200, seed=0)
    config = DSEConfig(
        error_requirement=1e-9,  # unmeetable
        initial_hidden=4,
        max_hidden=8,
        prune=False,
        seed=0,
    )
    from repro.nn.trainer import TrainConfig

    fast = TrainConfig(epochs=20, batch_size=128, learning_rate=0.02, shuffle_seed=0)

    def run():
        return explore(
            bench.spec.topology,
            data.x_train, data.y_train, data.x_test, data.y_test,
            bench.error_normalized, config, fast,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("dse_mission_impossible",
                f"status={result.status} K={result.k} K_max={result.k_max}")
    assert result.status == "mission_impossible"
