"""Timing harness for the hot-path speed campaign.

Four paths identified by ``python -m repro profile`` as dominating
experiment wall time, each measured against its serial/uncached
reference **after** asserting the optimized result is bit-identical
(float64) to the reference:

* batched ensemble training (one stacked matmul per layer for all
  members) vs a loop of independent ``Trainer.fit`` runs;
* repeated crossbar deployment with the weight->conductance mapping
  cache vs re-solving every time;
* MNA network construct+solve with the banded Cholesky fast path and
  vectorized stamping vs the sparse-LU solver (agreement here is
  factorization round-off, ~1e-12 relative — documented tolerance);
* process-pool fan-out of a large read-only array with the
  ``REPRO_SHM`` zero-copy transport vs the default pickling path.

Results go to ``BENCH_hotpath.json`` (repo root, mirrored under
``benchmarks/out/``).  Marked ``slow``: run with

    pytest benchmarks/test_bench_hotpath.py -m slow --benchmark-only
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.nn import MLP, TrainConfig, Trainer, WeightedMSE
from repro.nn.ensemble import EnsembleTrainer
from repro.obs.runinfo import provenance_header
from repro.parallel.executor import ProcessExecutor
from repro.xbar.mapping import clear_mapping_cache, map_matrix
from repro.xbar.mna import MNACrossbar

pytestmark = pytest.mark.slow

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).parent / "out"

ENSEMBLE_MEMBERS = 8
ENSEMBLE_SIZES = (16, 32, 8)
ENSEMBLE_SAMPLES = 512
ENSEMBLE_EPOCHS = 12

DEPLOY_SHAPE = (48, 24)
DEPLOY_REPEATS = 80

MNA_SHAPES = ((16, 8), (32, 32))
MNA_BATCH = 16

SHM_ARRAY_MB = 16
SHM_TASKS = 8
SHM_WORKERS = 4


def _timeit(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _save_json(payload):
    text = json.dumps(payload, indent=2) + "\n"
    (REPO_ROOT / "BENCH_hotpath.json").write_text(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_hotpath.json").write_text(text)


def _ensemble_data():
    rng = np.random.default_rng(11)
    x = rng.uniform(-1, 1, (ENSEMBLE_SAMPLES, ENSEMBLE_SIZES[0]))
    w = rng.uniform(-1, 1, (ENSEMBLE_SIZES[0], ENSEMBLE_SIZES[-1]))
    y = np.tanh(x @ w)
    return x, y


def _bench_ensemble():
    x, y = _ensemble_data()
    loss = WeightedMSE()
    config = TrainConfig(
        epochs=ENSEMBLE_EPOCHS, batch_size=32, optimizer="adam",
        learning_rate=0.01, track_train_loss=False,
    )
    seeds = list(range(100, 100 + ENSEMBLE_MEMBERS))

    def serial():
        models = [MLP(ENSEMBLE_SIZES, rng=k) for k in range(ENSEMBLE_MEMBERS)]
        for k, seed in enumerate(seeds):
            cfg = TrainConfig(**{**config.__dict__, "shuffle_seed": seed})
            Trainer(loss=loss, config=cfg).fit(models[k], x, y)
        return models

    def batched():
        models = [MLP(ENSEMBLE_SIZES, rng=k) for k in range(ENSEMBLE_MEMBERS)]
        EnsembleTrainer(loss=loss, config=config).fit(
            models, x, y, shuffle_seeds=seeds
        )
        return models

    t_serial, serial_models = _timeit(serial)
    t_batched, batched_models = _timeit(batched)
    for sm, bm in zip(serial_models, batched_models):
        for sl, bl in zip(sm.layers, bm.layers):
            assert np.array_equal(sl.weights, bl.weights)
            assert np.array_equal(sl.bias, bl.bias)
    return {
        "members": ENSEMBLE_MEMBERS,
        "topology": "x".join(str(s) for s in ENSEMBLE_SIZES),
        "samples": ENSEMBLE_SAMPLES,
        "epochs": ENSEMBLE_EPOCHS,
        "seconds_serial_loop": round(t_serial, 4),
        "seconds_batched": round(t_batched, 4),
        "speedup": round(t_serial / t_batched, 2),
        "bit_identical": True,
    }


def _bench_mapping_cache():
    weights = np.random.default_rng(3).uniform(-1, 1, DEPLOY_SHAPE)

    def cold():
        outs = []
        for _ in range(DEPLOY_REPEATS):
            clear_mapping_cache()
            outs.append(map_matrix(weights))
        return outs

    def warm():
        clear_mapping_cache()
        return [map_matrix(weights) for _ in range(DEPLOY_REPEATS)]

    t_cold, cold_xbars = _timeit(cold)
    t_warm, warm_xbars = _timeit(warm)
    clear_mapping_cache()
    for a, b in zip(cold_xbars, warm_xbars):
        assert np.array_equal(a.positive.conductances, b.positive.conductances)
        assert np.array_equal(a.negative.conductances, b.negative.conductances)
    return {
        "weights_shape": list(DEPLOY_SHAPE),
        "repeats": DEPLOY_REPEATS,
        "seconds_uncached": round(t_cold, 4),
        "seconds_cached": round(t_warm, 4),
        "speedup": round(t_cold / t_warm, 2),
        "bit_identical": True,
    }


def _bench_mna():
    rows = []
    for shape in MNA_SHAPES:
        g = np.random.default_rng(5).uniform(1e-7, 1e-4, shape)
        v = np.random.default_rng(6).uniform(0.0, 1.0, (MNA_BATCH, shape[0]))

        def lu():
            return MNACrossbar(g, 1e-3, solver="lu").solve(v)

        def banded():
            return MNACrossbar(g, 1e-3, solver="banded").solve(v)

        t_lu, out_lu = _timeit(lu, repeats=5)
        t_banded, out_banded = _timeit(banded, repeats=5)
        # Two factorizations of the same SPD system: round-off only.
        assert np.allclose(out_banded, out_lu, rtol=1e-9, atol=1e-15)
        rows.append({
            "shape": list(shape),
            "rhs_batch": MNA_BATCH,
            "seconds_lu": round(t_lu, 5),
            "seconds_banded": round(t_banded, 5),
            "speedup": round(t_lu / t_banded, 2),
            "max_rel_err": float(
                np.max(np.abs(out_banded - out_lu) / (np.abs(out_lu) + 1e-30))
            ),
        })
    return rows


def _shm_task(item):
    base, scale = item
    return float(base.sum() * scale)


def _bench_shm(monkeypatch):
    side = int(np.sqrt(SHM_ARRAY_MB * (1 << 20) / 8))
    base = np.random.default_rng(7).standard_normal((side, side))
    items = [(base, float(i)) for i in range(SHM_TASKS)]

    monkeypatch.delenv("REPRO_SHM", raising=False)
    t_pickle, out_pickle = _timeit(
        lambda: ProcessExecutor(workers=SHM_WORKERS).map(_shm_task, items)
    )
    monkeypatch.setenv("REPRO_SHM", "1")
    t_shm, out_shm = _timeit(
        lambda: ProcessExecutor(workers=SHM_WORKERS).map(_shm_task, items)
    )
    monkeypatch.delenv("REPRO_SHM", raising=False)
    assert out_shm == out_pickle
    return {
        "array_mb": SHM_ARRAY_MB,
        "tasks": SHM_TASKS,
        "workers": SHM_WORKERS,
        "seconds_pickled": round(t_pickle, 4),
        "seconds_shm": round(t_shm, 4),
        "speedup": round(t_pickle / t_shm, 2),
        "bit_identical": True,
    }


def test_bench_hotpath(save_report, monkeypatch):
    ensemble = _bench_ensemble()
    cache = _bench_mapping_cache()
    mna = _bench_mna()
    shm = _bench_shm(monkeypatch)

    payload = {
        "provenance": provenance_header(workers=SHM_WORKERS),
        "ensemble_training": ensemble,
        "mapping_cache": cache,
        "mna_solver": mna,
        "shm_dispatch": shm,
    }
    _save_json(payload)

    mna_lines = "\n".join(
        f"mna {r['shape'][0]}x{r['shape'][1]} construct+solve: "
        f"lu {r['seconds_lu']:.4f}s, banded {r['seconds_banded']:.4f}s "
        f"-> {r['speedup']:.1f}x (rel err {r['max_rel_err']:.1e})"
        for r in mna
    )
    save_report(
        "bench_hotpath",
        "Hot-path campaign timings\n"
        f"ensemble ({ensemble['members']} members, {ensemble['epochs']} epochs): "
        f"serial {ensemble['seconds_serial_loop']:.3f}s, "
        f"batched {ensemble['seconds_batched']:.3f}s "
        f"-> {ensemble['speedup']:.1f}x\n"
        f"mapping cache ({cache['repeats']} deploys): "
        f"uncached {cache['seconds_uncached']:.3f}s, "
        f"cached {cache['seconds_cached']:.3f}s -> {cache['speedup']:.1f}x\n"
        f"{mna_lines}\n"
        f"shm dispatch ({shm['array_mb']}MB x {shm['tasks']} tasks): "
        f"pickled {shm['seconds_pickled']:.3f}s, shm {shm['seconds_shm']:.3f}s "
        f"-> {shm['speedup']:.1f}x",
    )

    # Acceptance: >= 2x on at least two hot paths, every equivalence
    # already asserted above.
    assert ensemble["speedup"] >= 2.0
    assert cache["speedup"] >= 2.0
    assert shm["speedup"] > 1.0
    assert all(r["speedup"] > 1.0 for r in mna)
