"""Ablation bench: MSB-weighted (Eq. 5) vs plain (Eq. 4) training loss.

DESIGN.md calls this design choice out for ablation.  Finding (also
recorded in EXPERIMENTS.md): the weighted loss wins in the paper's
weak-training regime — few epochs, plain gradient descent — because it
spends the scarce gradient budget on the bits that dominate the value
error.  A fully-converged Adam run equalizes per-parameter step sizes
and the plain loss catches up (and can win on smooth kernels).  Both
regimes are measured here.
"""

from repro.core.mei import MEI, MEIConfig
from repro.experiments.runner import format_table
from repro.nn.trainer import TrainConfig
from repro.workloads.expfit import ExpFitBenchmark
from repro.workloads.registry import make_benchmark

WEAK = TrainConfig(epochs=10, batch_size=128, learning_rate=0.01, shuffle_seed=0)
STRONG = TrainConfig(epochs=200, batch_size=128, learning_rate=0.01, shuffle_seed=0,
                     lr_decay=0.5, lr_decay_every=70)


def _compare(bench, config, data, regime, rows, hidden=None, seed=0):
    topo = bench.spec.topology
    if hidden is None:
        hidden = 2 * topo.hidden
    for weighted in (False, True):
        mei = MEI(
            MEIConfig(topo.inputs, topo.outputs, hidden, msb_weighted=weighted),
            seed=seed,
        ).train(data.x_train, data.y_train, config)
        error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
        rows.append([bench.spec.name, regime, "Eq.5" if weighted else "plain", error])
    return rows[-1][-1], rows[-2][-1]  # (weighted, plain)


def test_bench_ablation_loss(benchmark, save_report):
    def run():
        rows = []
        expfit = ExpFitBenchmark()
        data = expfit.dataset(n_train=1500, n_test=300, seed=0)
        # Weak regime at the paper's own small topology: the gradient
        # budget is scarce, so Eq. 5's MSB emphasis pays off.
        weak_weighted, weak_plain = _compare(expfit, WEAK, data, "weak", rows, hidden=8)
        _compare(expfit, STRONG, data, "strong", rows)
        fft = make_benchmark("fft")
        fft_data = fft.dataset(n_train=2500, n_test=400, seed=0)
        _compare(fft, STRONG, fft_data, "strong", rows)
        return rows, weak_weighted, weak_plain

    rows, weak_weighted, weak_plain = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_loss",
        "Loss ablation — Eq. 5 MSB weighting vs plain MSE\n"
        + format_table(["benchmark", "regime", "loss", "error"], rows),
    )
    # The paper's claim reproduces in its own training regime.
    assert weak_weighted < weak_plain
