"""Bench: Fig. 2 — power/area breakdown of a 2x8x2 RCS with AD/DA.

Paper rows: AD/DA > 85% of both budgets, RRAM around one percent.
"""

from repro.experiments.fig2 import run_fig2


def test_bench_fig2_breakdown(benchmark, save_report):
    result = benchmark.pedantic(run_fig2, rounds=3, iterations=1)
    save_report("fig2_breakdown", result.render())
    assert result.area.interface_fraction > 0.85
    assert result.power.interface_fraction > 0.85
    assert result.area.fractions["rram"] < 0.02
    assert result.power.fractions["rram"] < 0.02
