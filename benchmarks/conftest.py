"""Shared infrastructure for the benchmark harness.

Each bench regenerates one of the paper's tables/figures, prints the
rows, and archives them under ``benchmarks/out/`` so the numbers
survive the pytest run.  Scales follow ``REPRO_FULL`` (see
``repro.experiments.runner``).
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.runner import default_scale

    return default_scale()
