"""Shared infrastructure for the benchmark harness.

Each bench regenerates one of the paper's tables/figures, prints the
rows, and archives them under ``benchmarks/out/`` — the rendered text
report always, and (when the bench passes structured ``rows``) a
provenance-stamped JSON payload alongside it.  The JSON payloads feed
the run-history store (``python -m repro bench`` ingests every
``benchmarks/out/*.json``; see ``docs/benchmarking.md``).  Scales
follow ``REPRO_FULL`` (see ``repro.experiments.runner``).
"""

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report (and optional JSON rows); echo it.

    ``rows`` may be any JSON-serializable structure — typically the
    driver's ``row_dicts()`` output.  It is wrapped with a
    ``provenance_header()`` so archived numbers stay attributable to a
    commit/host, and written to ``benchmarks/out/<name>.json``.
    """
    from repro.obs.runinfo import provenance_header

    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, rows=None) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        if rows is not None:
            payload = {"provenance": provenance_header(), "rows": rows}
            (OUT_DIR / f"{name}.json").write_text(
                json.dumps(payload, indent=2, default=str) + "\n"
            )
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.runner import default_scale

    return default_scale()
