"""Micro-benchmarks: raw simulator throughput (pytest-benchmark timing).

These are classic performance benches (many timed rounds) for the
kernels everything else sits on: crossbar evaluation, MEI inference,
the MNA solve, and fixed-point encoding.
"""

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.device.rram import HFOX_DEVICE
from repro.device.variation import NonIdealFactors
from repro.nn.trainer import TrainConfig
from repro.quant.fixedpoint import FixedPointCodec
from repro.xbar.mapping import DifferentialCrossbar
from repro.xbar.mna import MNACrossbar


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_crossbar_apply(benchmark, rng):
    pair = DifferentialCrossbar(rng.normal(size=(64, 32)))
    x = rng.uniform(0, 1, (256, 64))
    result = benchmark(pair.apply, x)
    assert result.shape == (256, 32)


def test_bench_crossbar_apply_noisy(benchmark, rng):
    pair = DifferentialCrossbar(rng.normal(size=(64, 32)))
    x = rng.uniform(0, 1, (256, 64))
    noise = NonIdealFactors(sigma_pv=0.1, sigma_sf=0.1, seed=0)
    result = benchmark(pair.apply, x, noise)
    assert result.shape == (256, 32)


def test_bench_mei_inference(benchmark, rng):
    mei = MEI(MEIConfig(in_groups=9, out_groups=1, hidden=16), seed=0)
    x = rng.uniform(0, 1, (64, 9))
    y = rng.uniform(0.1, 0.9, (64, 1))
    mei.train(x, y, TrainConfig(epochs=2, batch_size=32, shuffle_seed=0))
    x_test = rng.uniform(0, 1, (256, 9))
    result = benchmark(mei.predict, x_test)
    assert result.shape == (256, 1)


def test_bench_mna_solve(benchmark, rng):
    g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (32, 32))
    mna = MNACrossbar(g, g_s=1e-3, wire_resistance=2.0)
    v = rng.uniform(0, 1, (16, 32))
    result = benchmark(mna.solve, v)
    assert result.shape == (16, 32)


def test_bench_fixedpoint_encode(benchmark, rng):
    codec = FixedPointCodec(8)
    values = rng.uniform(0, 1, (1000, 64))
    result = benchmark(codec.encode, values)
    assert result.shape == (1000, 512)
