"""Bench: Fig. 3 — exp(-x^2) fitting error vs hidden layer size.

Paper shape: accuracy saturates as the hidden layer grows; at larger
hidden sizes the MEI architecture is comparable to (or better than)
the AD/DA RCS.
"""

from repro.experiments.fig3 import run_fig3


def test_bench_fig3_hidden_sweep(benchmark, save_report, scale):
    result = benchmark.pedantic(
        run_fig3,
        kwargs={"hidden_sizes": (2, 4, 8, 16), "scale": scale, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_report("fig3_hidden_sweep", result.render())

    errors_weighted = [p.error_mei_weighted for p in result.points]
    errors_adda = [p.error_adda for p in result.points]
    # Shape 1: growing the hidden layer helps MEI and then saturates —
    # the largest size is much better than the smallest.  (The AD/DA
    # RCS saturates immediately on this easy kernel: exp(-x^2) needs
    # only a couple of analog neurons, so its curve is flat.)
    assert errors_weighted[-1] < errors_weighted[0]
    assert errors_adda[-1] <= errors_adda[0] * 1.5
    # Shape 2: at the largest hidden size MEI is in the AD/DA ballpark.
    assert errors_weighted[-1] < max(4 * errors_adda[-1], 0.1)
