"""Extension bench: per-inference latency, AD/DA RCS vs MEI.

The paper quantifies the interface's area/power cost; the same
converters also gate latency.  This bench tabulates the timing model
(`repro.cost.timing`) over the six Table 1 topologies under two
converter provisioning policies (private converter per port vs one
shared converter per side).
"""

from repro.cost.timing import TimingParams, latency_mei, latency_traditional, speedup
from repro.experiments.runner import format_table
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark

PRIVATE = TimingParams()
SHARED = TimingParams(dacs_per_port=1 / 8, adcs_per_port=1 / 8)


def test_bench_ext_timing(benchmark, save_report):
    def run():
        rows = []
        for name in BENCHMARK_NAMES:
            topo = make_benchmark(name).spec.topology
            mei = PAPER_TABLE1[name].pruned_mei
            rows.append([
                name,
                latency_traditional(topo, PRIVATE),
                latency_traditional(topo, SHARED),
                latency_mei(mei, PRIVATE),
                speedup(topo, mei, PRIVATE),
                speedup(topo, mei, SHARED),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    save_report(
        "ext_timing",
        "Latency extension — per-inference time (ns) and MEI speedup\n"
        + format_table(
            ["bench", "AD/DA private", "AD/DA shared", "MEI", "speedup", "speedup shared"],
            rows,
        ),
    )
    for row in rows:
        assert row[4] > 1.0  # MEI faster even with private converters
        assert row[5] > row[4]  # sharing makes the AD/DA gap worse
