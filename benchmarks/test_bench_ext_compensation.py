"""Extension bench: IR-drop compensation across technology nodes.

The paper's future work: "reducing the IR drop for a larger RCS under
smaller technology node".  This bench quantifies how much of the
wire-loss error conductance re-targeting removes, per node — near
elimination at 90nm, partial at 45nm, saturation-limited at 22nm.
"""

import numpy as np

from repro.device.rram import HFOX_DEVICE
from repro.experiments.runner import format_table
from repro.xbar.compensation import compensate_ir_drop
from repro.xbar.ir_drop import wire_resistance_for_node

SIZE = 32
NODES = (90, 45, 22)


def test_bench_ext_compensation(benchmark, save_report):
    rng = np.random.default_rng(0)
    g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max / 2, (SIZE, SIZE))

    def run():
        rows = []
        for node in NODES:
            r_wire = wire_resistance_for_node(node)
            report = compensate_ir_drop(g, g_s=1e-3, wire_resistance=r_wire,
                                        iterations=4)
            rows.append([
                node, r_wire, report.error_before, report.error_after,
                report.improvement, report.saturated_fraction,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_compensation",
        f"IR-drop compensation — {SIZE}x{SIZE} array, coefficient error\n"
        + format_table(
            ["node (nm)", "R_wire", "before", "after", "removed", "saturated"],
            rows,
        ),
    )
    by_node = {r[0]: r for r in rows}
    # Compensation helps at every node ...
    for node in NODES:
        assert by_node[node][3] < by_node[node][2]
    # ... is near-complete at the paper's 90nm operating point ...
    assert by_node[90][4] > 0.8
    # ... and is saturation-limited at the smallest node.
    assert by_node[22][4] < by_node[90][4]
