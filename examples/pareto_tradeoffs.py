"""Pareto trade-offs: pick an operating point in the MEI design space.

Sec. 4 of the paper promises "trade-offs among accuracy, area, and
power consumption"; this example enumerates a grid of MEI design
points (hidden size x ensemble size x word length) on the K-Means
workload, prints the full table, and highlights the Pareto frontier a
designer would choose from.

Run:  python examples/pareto_tradeoffs.py
"""

from repro import TrainConfig, make_benchmark
from repro.core.tradeoff import enumerate_tradeoffs


def main() -> None:
    bench = make_benchmark("kmeans")
    data = bench.dataset(n_train=3000, n_test=400, seed=0)
    print(f"benchmark: {bench.spec.name}, traditional topology {bench.spec.topology}\n")

    result = enumerate_tradeoffs(
        bench.spec.topology,
        data.x_train, data.y_train, data.x_test, data.y_test,
        bench.error_normalized,
        hidden_sizes=(16, 32),
        ensemble_sizes=(1, 2),
        bit_lengths=(6, 8),
        train_config=TrainConfig(epochs=150, batch_size=32, learning_rate=0.01,
                                 shuffle_seed=0, lr_decay=0.5, lr_decay_every=75),
        seed=0,
    )

    print(result.render())
    print("\nPareto frontier (error ↑ as savings ↑):")
    for point in result.pareto:
        print(f"  {point.label:<16} error {point.error:.4f}  "
              f"area saved {point.area_saved:6.1%}  "
              f"power saved {point.power_saved:6.1%}")


if __name__ == "__main__":
    main()
