"""Fleet deployment: train once, fabricate many, calibrate each chip.

A production story the library supports end to end:

1. train an MEI system and persist it (`repro.serialization`);
2. "fabricate" a fleet of chip instances by freezing independent
   static process-variation draws into each deployment;
3. measure the fleet's accuracy spread, then run ICE inline
   calibration on every chip and measure it again.

Run:  python examples/fleet_deployment.py
"""

import numpy as np

from repro import MEI, MEIConfig, NonIdealFactors, TrainConfig, make_benchmark
from repro.core.calibration import ice_calibrate
from repro.serialization import load_mei, save_mei

FLEET_SIZE = 6
STATIC_PV = 0.3


def main() -> None:
    bench = make_benchmark("kmeans")
    data = bench.dataset(n_train=4000, n_test=500, seed=0)
    config = TrainConfig(epochs=200, batch_size=32, learning_rate=0.01,
                         shuffle_seed=0, lr_decay=0.5, lr_decay_every=100)

    print("training the golden model ...")
    golden = MEI(MEIConfig(6, 1, 32), seed=0).train(data.x_train, data.y_train, config)
    golden_error = bench.error_normalized(golden.predict(data.x_test), data.y_test)
    print(f"golden (ideal deployment) error: {golden_error:.4f}")

    save_mei(golden, "/tmp/kmeans_mei.npz")
    print("saved to /tmp/kmeans_mei.npz")

    # Calibration stimulus: the training inputs as bit arrays, with the
    # software network's outputs as the reference.
    cal_bits = golden.encode_inputs(data.x_train[:1000])
    reference = golden.network.predict(cal_bits)

    print(f"\nfabricating {FLEET_SIZE} chips (static PV sigma={STATIC_PV}):")
    print(f"{'chip':<6}{'uncalibrated':<15}{'calibrated':<13}{'recovered'}")
    uncal_errors, cal_errors = [], []
    for chip_id in range(FLEET_SIZE):
        chip = load_mei("/tmp/kmeans_mei.npz")  # fresh ideal deployment
        chip.analog.freeze_variation(
            NonIdealFactors(sigma_pv=STATIC_PV, seed=100), trial=chip_id
        )
        before = bench.error_normalized(chip.predict(data.x_test), data.y_test)
        report = ice_calibrate(chip.analog, reference, cal_bits)
        after = bench.error_normalized(chip.predict(data.x_test), data.y_test)
        uncal_errors.append(before)
        cal_errors.append(after)
        print(f"{chip_id:<6}{before:<15.4f}{after:<13.4f}"
              f"{report.improvement:.1%} of chip deviation")

    print(f"\nfleet mean error: {np.mean(uncal_errors):.4f} uncalibrated "
          f"-> {np.mean(cal_errors):.4f} calibrated "
          f"(golden {golden_error:.4f})")


if __name__ == "__main__":
    main()
