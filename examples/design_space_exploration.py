"""Design space exploration (Algorithm 2) on a robotics workload.

Converts the Inversek2j AD/DA RCS into a MEI-based architecture
meeting an error requirement under device noise:

* hidden-size search with the Eq. 8 stopping rule;
* the Eq. 9 bound on the SAAB ensemble size;
* the SAAB-vs-wider-hidden race (Lines 18-19);
* LSB pruning of the interface ports (Line 22).

Run:  python examples/design_space_exploration.py
"""

from repro import DSEConfig, NonIdealFactors, TrainConfig, explore, make_benchmark
from repro.experiments.table1 import calibrated_params


def main() -> None:
    bench = make_benchmark("inversek2j")
    data = bench.dataset(n_train=5000, n_test=800, seed=0)
    print(f"benchmark: {bench.spec.name}, traditional topology {bench.spec.topology}")

    # Inversek2j is the paper's hardest MEI benchmark (its output LSBs
    # change sensitively with the input), so the error budget is the
    # loosest of the suite; tighten it to ~0.2 to see the flow escalate
    # through SAAB and end in "Mission Impossible".
    params = calibrated_params()  # coefficients fitted to Table 1
    config = DSEConfig(
        error_requirement=0.30,
        robustness_requirement=0.5,
        noise=NonIdealFactors(sigma_pv=0.05, sigma_sf=0.05, seed=3),
        initial_hidden=8,
        max_hidden=64,
        noise_trials=5,
        area_params=params["area"],
        power_params=params["power"],
        prune=True,
        seed=0,
    )
    train = TrainConfig(epochs=150, batch_size=128, learning_rate=0.01,
                        shuffle_seed=0, lr_decay=0.5, lr_decay_every=50)

    result = explore(
        bench.spec.topology,
        data.x_train, data.y_train, data.x_test, data.y_test,
        bench.error_normalized,
        config,
        train,
    )

    print(f"\nstatus: {result.status}")
    print(f"hidden-size search history: {result.hidden_history}")
    print(f"chosen hidden size H = {result.hidden}, K_max (Eq. 9) = {result.k_max}")
    print(f"ensemble size K = {result.k} (SAAB used: {result.used_saab})")
    print(f"final topology: {result.topology}")
    print(f"error = {result.error:.4f} (requirement {config.error_requirement})")
    print(f"robustness = {result.robustness:.3f} "
          f"(requirement {config.robustness_requirement})")
    print(f"area saved  = {result.area_saved:.1%}")
    print(f"power saved = {result.power_saved:.1%}")
    print("\nexploration log:")
    for line in result.log:
        print("  " + line)


if __name__ == "__main__":
    main()
