"""Image pipelines on the RCS: Sobel edges and k-means segmentation.

Runs two of the paper's image workloads end to end with the exact
kernel replaced by a trained MEI accelerator:

* Sobel: every 3x3 window's gradient magnitude comes from the RCS;
* K-Means: Lloyd's algorithm queries the RCS for pixel-centroid
  distances while segmenting a synthetic image.

Both report the image-diff metric the paper uses, clean and noisy.

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro import MEI, MEIConfig, NonIdealFactors, TrainConfig, make_benchmark
from repro.workloads.jpeg import synthetic_image
from repro.workloads.kmeans import segment_image, synthetic_rgb_image
from repro.workloads.sobel import sobel_image

TRAIN = TrainConfig(epochs=150, batch_size=128, learning_rate=0.01,
                    shuffle_seed=0, lr_decay=0.5, lr_decay_every=50)


def sobel_demo() -> None:
    bench = make_benchmark("sobel")
    data = bench.dataset(n_train=5000, n_test=500, seed=0)
    mei = MEI(MEIConfig(9, 1, 32), seed=0).train(data.x_train, data.y_train, TRAIN)
    in_scaler, out_scaler = bench.scalers()

    def window_fn(noise=None):
        def fn(windows):
            unit = in_scaler.transform(windows)
            out = mei.predict(unit) if noise is None else mei.predict(unit, noise, 0)
            return out_scaler.inverse(out)
        return fn

    img = synthetic_image(48, 48, np.random.default_rng(5))
    exact = sobel_image(img)
    approx = sobel_image(img, window_fn=window_fn())
    noisy = sobel_image(img, window_fn=window_fn(NonIdealFactors(sigma_pv=0.1, seed=2)))
    print("Sobel edge map, image diff vs exact operator:")
    print(f"  MEI (clean): {np.mean(np.abs(approx - exact)) / 255:.4f}")
    print(f"  MEI (PV 0.1): {np.mean(np.abs(noisy - exact)) / 255:.4f}")


def kmeans_demo() -> None:
    bench = make_benchmark("kmeans")
    data = bench.dataset(n_train=5000, n_test=500, seed=0)
    mei = MEI(MEIConfig(6, 1, 40), seed=0).train(data.x_train, data.y_train, TRAIN)
    in_scaler, out_scaler = bench.scalers()

    def distance_fn(pairs):
        return out_scaler.inverse(mei.predict(in_scaler.transform(pairs)))

    img = synthetic_rgb_image(24, 24, np.random.default_rng(8), n_regions=4)
    exact_seg = segment_image(img, k=4, rng=0, max_iterations=8)
    approx_seg = segment_image(img, k=4, distance_fn=distance_fn, rng=0,
                               max_iterations=8)
    diff = np.mean(np.abs(approx_seg - exact_seg)) / 255.0
    print("\nK-Means segmentation with RCS-served distances:")
    print(f"  image diff vs exact Lloyd run: {diff:.4f}")


def main() -> None:
    sobel_demo()
    kmeans_demo()


if __name__ == "__main__":
    main()
