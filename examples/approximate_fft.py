"""Approximate computing: an MEI RCS serving twiddle factors to an FFT.

The motivating scenario of the NPU suite's ``fft`` workload: the
twiddle computation inside a radix-2 Cooley-Tukey FFT is offloaded to
an analog neural accelerator.  This example trains the MEI version,
plugs it into our from-scratch FFT, and measures the end-to-end
spectrum error of the approximate transform, clean and under device
noise.

Run:  python examples/approximate_fft.py
"""

import numpy as np

from repro import MEI, MEIConfig, NonIdealFactors, TrainConfig, make_benchmark
from repro.workloads.fft import approximate_fft


def main() -> None:
    bench = make_benchmark("fft")
    data = bench.dataset(n_train=8000, n_test=1000, seed=0)
    config = TrainConfig(epochs=300, batch_size=128, learning_rate=0.01,
                         shuffle_seed=0, lr_decay=0.5, lr_decay_every=100)

    mei = MEI(MEIConfig(in_groups=1, out_groups=2, hidden=32, bits=8), seed=0)
    mei.train(data.x_train, data.y_train, config)
    kernel_error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
    print(f"twiddle kernel error (avg relative): {kernel_error:.4f}")

    in_scaler, out_scaler = bench.scalers()

    def make_twiddle(noise=None, trial=0):
        def fn(fractions):
            unit = in_scaler.transform(fractions)
            if noise is None:
                out = mei.predict(unit)
            else:
                out = mei.predict(unit, noise, trial)
            return out_scaler.inverse(out)

        return fn

    # A test signal: two tones plus noise.
    t = np.arange(256)
    signal = (np.sin(2 * np.pi * 13 * t / 256)
              + 0.5 * np.sin(2 * np.pi * 40 * t / 256)
              + 0.05 * np.random.default_rng(1).normal(size=256))

    exact = np.fft.fft(signal)
    approx = approximate_fft(signal, make_twiddle())
    clean_err = np.abs(approx - exact).max() / np.abs(exact).max()
    print(f"end-to-end FFT spectrum error (clean):      {clean_err:.4f}")

    noise = NonIdealFactors(sigma_pv=0.05, sigma_sf=0.1, seed=7)
    noisy = approximate_fft(signal, make_twiddle(noise))
    noisy_err = np.abs(noisy - exact).max() / np.abs(exact).max()
    print(f"end-to-end FFT spectrum error (PV+SF noise): {noisy_err:.4f}")

    # The dominant tones survive approximation: compare peak bins.
    exact_peaks = np.argsort(np.abs(exact[:128]))[-2:]
    approx_peaks = np.argsort(np.abs(approx[:128]))[-2:]
    print(f"dominant bins exact={sorted(exact_peaks.tolist())} "
          f"approx={sorted(approx_peaks.tolist())}")


if __name__ == "__main__":
    main()
