"""Robustness study: MEI vs AD/DA under process variation and signal noise.

A compact version of the paper's Fig. 5 on one benchmark: sweeps the
lognormal sigma of each non-ideal factor and prints the Monte-Carlo
mean error of the traditional RCS, a single MEI, and a SAAB ensemble.

Run:  python examples/robustness_study.py
"""

from repro import (
    MEI,
    SAAB,
    MEIConfig,
    NonIdealFactors,
    SAABConfig,
    TrainConfig,
    TraditionalRCS,
    make_benchmark,
)
from repro.metrics.robustness import evaluate_under_noise

TRAIN = TrainConfig(epochs=150, batch_size=128, learning_rate=0.01,
                    shuffle_seed=0, lr_decay=0.5, lr_decay_every=50)
SIGMAS = (0.0, 0.05, 0.1, 0.2)
TRIALS = 8


def main() -> None:
    bench = make_benchmark("inversek2j")
    data = bench.dataset(n_train=5000, n_test=600, seed=0)
    topo = bench.spec.topology

    print("training the three systems ...")
    systems = {
        "AD/DA": TraditionalRCS(topo, seed=0).train(data.x_train, data.y_train, TRAIN),
        "MEI": MEI(MEIConfig(topo.inputs, topo.outputs, 32), seed=0).train(
            data.x_train, data.y_train, TRAIN
        ),
        "MEI+SAAB": SAAB(
            lambda k: MEI(MEIConfig(topo.inputs, topo.outputs, 32), seed=10 + k),
            SAABConfig(n_learners=3, compare_bits=5,
                       noise=NonIdealFactors(sigma_pv=0.05, sigma_sf=0.05, seed=1),
                       seed=0),
        ).train(data.x_train, data.y_train, TRAIN),
    }

    for factor, make_noise in (
        ("process variation", lambda s: NonIdealFactors(sigma_pv=s, seed=42)),
        ("signal fluctuation", lambda s: NonIdealFactors(sigma_sf=s, seed=42)),
    ):
        print(f"\n{factor} (lognormal sigma sweep, {TRIALS} trials each):")
        header = "  system    " + "".join(f"  s={s:<6}" for s in SIGMAS)
        print(header)
        for name, system in systems.items():
            errors = []
            for sigma in SIGMAS:
                evaluation = evaluate_under_noise(
                    lambda x, n, t: system.predict(x, n, t),
                    data.x_test, data.y_test,
                    bench.error_normalized,
                    make_noise(sigma),
                    trials=TRIALS,
                )
                errors.append(evaluation.mean)
            print(f"  {name:<9}" + "".join(f"  {e:<7.4f}" for e in errors))


if __name__ == "__main__":
    main()
