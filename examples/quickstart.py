"""Quickstart: convert an AD/DA RCS to MEI and compare cost + accuracy.

Reproduces the paper's core pitch on the Sobel benchmark in a minute:

1. train a traditional RCS (8-bit AD/DA interface around an analog
   crossbar network);
2. train the MEI equivalent (one crossbar port per interface bit, no
   converters, Eq. 5 MSB-weighted loss);
3. compare application error and the Eq. 6/7 area/power costs.

Run:  python examples/quickstart.py
"""

from repro import (
    MEI,
    LITERATURE_AREA,
    LITERATURE_POWER,
    MEIConfig,
    TrainConfig,
    TraditionalRCS,
    make_benchmark,
    savings,
)


def main() -> None:
    bench = make_benchmark("sobel")
    print(f"benchmark: {bench.spec.name} ({bench.spec.application}), "
          f"topology {bench.spec.topology}, metric {bench.spec.metric}")

    data = bench.dataset(n_train=4000, n_test=500, seed=0)
    config = TrainConfig(epochs=120, batch_size=128, learning_rate=0.01,
                         shuffle_seed=0, lr_decay=0.5, lr_decay_every=40)

    # 1. The baseline: analog network behind 8-bit AD/DAs.
    rcs = TraditionalRCS(bench.spec.topology, seed=0)
    rcs.train(data.x_train, data.y_train, config)
    adda_error = bench.error_normalized(rcs.predict(data.x_test), data.y_test)
    print(f"AD/DA RCS   error: {adda_error:.4f}")

    # 2. MEI: merge the interface into the crossbar.
    mei = MEI(
        MEIConfig(
            in_groups=bench.spec.topology.inputs,
            out_groups=bench.spec.topology.outputs,
            hidden=2 * bench.spec.topology.hidden,
            bits=8,
        ),
        seed=0,
    )
    mei.train(data.x_train, data.y_train, config)
    mei_error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
    print(f"MEI RCS     error: {mei_error:.4f}  (topology {mei.topology()})")

    # 3. What did removing the converters buy?
    for params in (LITERATURE_AREA, LITERATURE_POWER):
        report = savings(bench.spec.topology, mei.topology(), params)
        print(f"{params.metric:<5} saved: {report.saved_fraction:.1%} "
              f"(traditional {report.traditional:,.0f} -> MEI {report.mei:,.0f})")


if __name__ == "__main__":
    main()
