"""Device-level tour: pulses, programming, IR drop, SPICE export.

The system-level experiments treat RRAM cells as "set this
conductance"; this example walks the device-level substrate beneath
that abstraction:

1. program a target conductance with SET pulse trains (filament
   dynamics model);
2. program a whole crossbar through the write-verify loop and measure
   the residual error;
3. quantify the IR-drop of the same array with the MNA circuit solver
   across technology nodes;
4. export the array as a SPICE netlist for external cross-checking.

Run:  python examples/device_level_tour.py
"""

import numpy as np

from repro.device import HFOX_DEVICE, ProgrammingConfig, program_conductances
from repro.device.dynamics import PulseTrain, SwitchingModel
from repro.xbar import MNACrossbar, crossbar_netlist, wire_resistance_for_node


def pulse_programming_demo() -> None:
    model = SwitchingModel()
    state = np.array([0.05])  # near the high-resistance state
    print("SET pulse staircase (50ns @ 0.9V):")
    for burst in range(4):
        state = PulseTrain(voltage=0.9, width=50e-9, count=5).apply(model, state)
        g = model.conductance(state)[0]
        print(f"  after {(burst + 1) * 5:2d} pulses: state={state[0]:.3f} "
              f"g={g:.3e} S")
    state = PulseTrain(voltage=-1.1, width=50e-9, count=10).apply(model, state)
    print(f"  after RESET train:  state={state[0]:.3f} "
          f"g={model.conductance(state)[0]:.3e} S")


def write_verify_demo(rng) -> np.ndarray:
    targets = rng.uniform(HFOX_DEVICE.g_min * 10, HFOX_DEVICE.g_max, (16, 16))
    result = program_conductances(
        targets, HFOX_DEVICE, ProgrammingConfig(tolerance=0.01, seed=0)
    )
    print("\nWrite-verify programming of a 16x16 array:")
    print(f"  yield: {result.yield_fraction:.1%}, "
          f"mean pulses/cell: {result.mean_iterations:.1f}, "
          f"worst residual error: {result.max_relative_error:.2%}")
    return result.conductances


def ir_drop_demo(conductances, rng) -> None:
    from repro.xbar import compensate_ir_drop

    v = rng.uniform(0, 1, (4, conductances.shape[0]))
    print("\nIR drop of the programmed array vs technology node "
          "(and after conductance compensation):")
    for node in (90, 45, 22):
        r_wire = wire_resistance_for_node(node)
        xbar = MNACrossbar(conductances, g_s=1e-3, wire_resistance=r_wire)
        err = xbar.ir_drop_error(v)
        ideal = np.mean(np.abs(xbar.ideal_outputs(v)))
        report = compensate_ir_drop(conductances, g_s=1e-3, wire_resistance=r_wire)
        print(f"  {node:>3}nm: {err / ideal:6.2%} of signal; "
              f"compensation removes {report.improvement:.0%} "
              f"({report.saturated_fraction:.1%} cells saturated)")


def netlist_demo(conductances) -> None:
    deck = crossbar_netlist(
        conductances[:4, :3],
        g_s=1e-3,
        v_in=[0.2, 0.4, 0.6, 0.8],
        comments=["cross-check against repro.xbar.mna.MNACrossbar"],
    )
    print("\nSPICE deck of the 4x3 corner (first 12 lines):")
    for line in deck.splitlines()[:12]:
        print("  " + line)
    print(f"  ... {len(deck.splitlines())} lines total")


def main() -> None:
    rng = np.random.default_rng(7)
    pulse_programming_demo()
    conductances = write_verify_demo(rng)
    ir_drop_demo(conductances, rng)
    netlist_demo(conductances)


if __name__ == "__main__":
    main()
